//! The search engine: grep-style commands over the bytecode plaintext,
//! with the multi-granularity caching of paper §IV-F and a pluggable
//! execution backend (linear oracle vs inverted index, see
//! [`crate::backend`]).

use crate::backend::{BackendChoice, SearchBackend};
use crate::text::BytecodeText;
use backdroid_dex::{class_descriptor, field_ref_string, method_ref_string};
use backdroid_ir::{ClassName, FieldSig, MethodSig};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One search command. Each corresponds to a grep the paper's tool issues
/// over the dexdump text. Ordered so dependency traces can hold command
/// sets deterministically.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum SearchCmd {
    /// Invocations of an exact method signature (the basic signature
    /// search of §IV-A).
    InvokeOf(MethodSig),
    /// `new-instance` allocations of a class (constructor location for the
    /// advanced search of §IV-B).
    NewInstanceOf(ClassName),
    /// `const-class` literals of a class (explicit-ICC parameters, §IV-D).
    ConstClass(ClassName),
    /// String literals (implicit-ICC action names, crypto transformation
    /// strings, …).
    ConstString(String),
    /// Any access (iget/iput/sget/sput) of a field.
    FieldAccess(FieldSig),
    /// Static accesses (sget/sput) of a field — used when a newly tainted
    /// static field must reveal its accessor methods (§V-A).
    StaticFieldAccess(FieldSig),
    /// Invocations whose callee *name* matches, regardless of class — used
    /// for ICC calls (`startService` on arbitrary context classes) and
    /// sink wrappers.
    MethodNameCall(String),
}

impl SearchCmd {
    /// The canonical textual command (mirrors the "raw search commands"
    /// the paper's tool logs). Used for display and diagnostics; the
    /// command cache keys on the [`SearchCmd`] value itself, so the hot
    /// path never formats this string.
    pub fn canonical(&self) -> String {
        match self {
            SearchCmd::InvokeOf(m) => format!("invoke:{}", method_ref_string(m)),
            SearchCmd::NewInstanceOf(c) => format!("new:{}", class_descriptor(c)),
            SearchCmd::ConstClass(c) => format!("const-class:{}", class_descriptor(c)),
            SearchCmd::ConstString(s) => format!("const-string:\"{s}\""),
            SearchCmd::FieldAccess(f) => format!("field:{}", field_ref_string(f)),
            SearchCmd::StaticFieldAccess(f) => format!("sfield:{}", field_ref_string(f)),
            SearchCmd::MethodNameCall(n) => format!("call-name:;.{n}:("),
        }
    }

    /// The substring the command greps for — both backends match lines
    /// against this exact needle, which is what keeps them hit-for-hit
    /// identical.
    pub fn needle(&self) -> String {
        match self {
            SearchCmd::InvokeOf(m) => method_ref_string(m),
            SearchCmd::NewInstanceOf(c) => class_descriptor(c),
            SearchCmd::ConstClass(c) => class_descriptor(c),
            SearchCmd::ConstString(s) => format!("\"{s}\""),
            SearchCmd::FieldAccess(f) => field_ref_string(f),
            SearchCmd::StaticFieldAccess(f) => field_ref_string(f),
            SearchCmd::MethodNameCall(n) => format!(";.{n}:("),
        }
    }

    /// The opcode guard a matching line must additionally satisfy (e.g.
    /// an `InvokeOf` needle inside a `new-instance` operand is not a
    /// call site).
    pub fn line_guard(&self) -> fn(&str) -> bool {
        match self {
            SearchCmd::InvokeOf(_) => |l| l.contains("invoke-"),
            SearchCmd::NewInstanceOf(_) => |l| l.contains("new-instance"),
            SearchCmd::ConstClass(_) => |l| l.contains("const-class"),
            SearchCmd::ConstString(_) => |l| l.contains("const-string"),
            SearchCmd::FieldAccess(_) => |l| {
                l.contains("iget") || l.contains("iput") || l.contains("sget") || l.contains("sput")
            },
            SearchCmd::StaticFieldAccess(_) => |l| l.contains("sget") || l.contains("sput"),
            SearchCmd::MethodNameCall(_) => |l| l.contains("invoke-"),
        }
    }
}

/// One search hit: the containing method and the dump line.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Hit {
    /// Method whose code contains the matching line.
    pub method: MethodSig,
    /// Line index into the dump.
    pub line: usize,
}

/// Cache statistics, reported per app (§IV-F: "the cache rate of our
/// search commands in each app is 23.39% on average").
///
/// Two work measures coexist so the bench harness can report both cost
/// models: `lines_scanned` is the **linear model** — the grep lines the
/// paper's tool would scan for the uncached commands issued, charged
/// identically under either backend so detection output and the
/// paper-calibrated scaled minutes never depend on the backend choice —
/// and `postings_touched` is the **indexed model** — the candidate lines
/// the [`Indexed`](crate::Indexed) backend actually examined (zero under
/// [`LinearScan`](crate::LinearScan), where the actual work *is*
/// `lines_scanned`).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CacheStats {
    /// Total search commands issued.
    pub commands: u64,
    /// Commands answered from cache.
    pub hits: u64,
    /// Linear-model grep work: dump lines a full scan covers for each
    /// non-cached command (backend-independent).
    pub lines_scanned: u64,
    /// Indexed-model work: posting-list candidate lines examined by the
    /// [`Indexed`](crate::Indexed) backend (zero under
    /// [`LinearScan`](crate::LinearScan)).
    pub postings_touched: u64,
}

impl CacheStats {
    /// Cache hit rate in `[0, 1]`; zero when no command was issued.
    pub fn rate(&self) -> f64 {
        if self.commands == 0 {
            0.0
        } else {
            self.hits as f64 / self.commands as f64
        }
    }

    /// The work done since an earlier snapshot of the same engine's
    /// counters (all fields are monotonic, so this is a plain field-wise
    /// difference). Lets a long-lived shared engine report per-analysis
    /// statistics.
    pub fn since(&self, baseline: &CacheStats) -> CacheStats {
        CacheStats {
            commands: self.commands.saturating_sub(baseline.commands),
            hits: self.hits.saturating_sub(baseline.hits),
            lines_scanned: self.lines_scanned.saturating_sub(baseline.lines_scanned),
            postings_touched: self
                .postings_touched
                .saturating_sub(baseline.postings_touched),
        }
    }
}

/// Number of cache shards. Keys hash-distribute across shards so
/// concurrent tasks rarely contend on the same lock.
const CACHE_SHARDS: usize = 16;

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % CACHE_SHARDS
}

/// Monotonic engine-wide counters, updated lock-free by concurrent tasks.
#[derive(Debug, Default)]
struct SharedStats {
    commands: AtomicU64,
    hits: AtomicU64,
    lines_scanned: AtomicU64,
    postings_touched: AtomicU64,
}

impl SharedStats {
    fn snapshot(&self) -> CacheStats {
        CacheStats {
            commands: self.commands.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            lines_scanned: self.lines_scanned.load(Ordering::Relaxed),
            postings_touched: self.postings_touched.load(Ordering::Relaxed),
        }
    }
}

/// The shared interior of a [`SearchEngine`]: the indexed text, the
/// execution backend, the sharded caches, and the atomic counters.
#[derive(Debug)]
struct EngineShared {
    text: BytecodeText,
    backend: Box<dyn SearchBackend>,
    backend_choice: BackendChoice,
    cmd_cache: Vec<Mutex<HashMap<SearchCmd, Vec<Hit>>>>,
    class_use_cache: Vec<Mutex<HashMap<ClassName, Vec<ClassName>>>>,
    stats: SharedStats,
    caching: AtomicBool,
}

/// Everything one analysis task asked the search engine: the command
/// set and the class-level "invoked by" targets. The delta analyzer
/// records one per sink site, then decides whether an app update could
/// have changed any recorded answer — if not (and the site's method
/// footprint is also untouched), the prior verdict is replayed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SearchTrace {
    /// Distinct [`SearchEngine::run`] commands issued.
    pub cmds: std::collections::BTreeSet<SearchCmd>,
    /// Distinct [`SearchEngine::classes_using`] targets queried.
    pub class_uses: std::collections::BTreeSet<ClassName>,
}

impl SearchTrace {
    /// Folds another trace into this one.
    pub fn merge(&mut self, other: &SearchTrace) {
        self.cmds.extend(other.cmds.iter().cloned());
        self.class_uses.extend(other.class_uses.iter().cloned());
    }
}

/// The per-app search engine: a cheaply cloneable **handle** on one
/// indexed dump, its caches, and its execution backend.
///
/// All methods take `&self`; clones share the text, the command caches,
/// and the statistics, so one engine can serve many concurrent analysis
/// tasks against the same app image. The command cache is sharded
/// (16 lock-striped maps) and **single-flight**: when several tasks miss
/// the same key simultaneously, exactly one executes the search while
/// the rest wait on the shard and replay the cached hits. Consequently
/// `lines_scanned` / `postings_touched` are charged once per unique
/// uncached command — deterministic under any thread interleaving.
///
/// A handle may additionally carry a [`SearchTrace`] recorder
/// ([`SearchEngine::with_recorder`]): recording is a per-handle
/// property (clones of a recording handle keep recording; the original
/// un-recorded handle does not), so the delta analyzer can scope a
/// trace to one sink site without affecting concurrent tasks.
#[derive(Clone, Debug)]
pub struct SearchEngine {
    shared: Arc<EngineShared>,
    recorder: Option<Arc<Mutex<SearchTrace>>>,
}

impl SearchEngine {
    /// Creates an engine over an indexed dump with the default backend
    /// ([`BackendChoice::Indexed`]).
    pub fn new(text: BytecodeText) -> Self {
        Self::with_backend(text, BackendChoice::default())
    }

    /// Creates an engine with an explicit backend choice.
    pub fn with_backend(text: BytecodeText, choice: BackendChoice) -> Self {
        SearchEngine {
            shared: Arc::new(EngineShared {
                text,
                backend: choice.backend(),
                backend_choice: choice,
                cmd_cache: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
                class_use_cache: (0..CACHE_SHARDS).map(|_| Mutex::default()).collect(),
                stats: SharedStats::default(),
                caching: AtomicBool::new(true),
            }),
            recorder: None,
        }
    }

    /// A handle over the same shared engine that records every command
    /// and `classes_using` target into `trace`. Recording never changes
    /// results, caching, or statistics — it only observes.
    pub fn with_recorder(&self, trace: Arc<Mutex<SearchTrace>>) -> SearchEngine {
        SearchEngine {
            shared: Arc::clone(&self.shared),
            recorder: Some(trace),
        }
    }

    /// Disables the search caches — used by the caching ablation bench to
    /// quantify the §IV-F enhancement. Affects every clone of this
    /// engine.
    pub fn set_caching(&self, enabled: bool) {
        self.shared.caching.store(enabled, Ordering::Relaxed);
    }

    /// The underlying indexed text.
    pub fn text(&self) -> &BytecodeText {
        &self.shared.text
    }

    /// The backend executing uncached commands.
    pub fn backend_choice(&self) -> BackendChoice {
        self.shared.backend_choice
    }

    /// Cache statistics so far, across all clones of this engine.
    pub fn stats(&self) -> CacheStats {
        self.shared.stats.snapshot()
    }

    /// Executes one uncached command, charging both work measures.
    fn execute(&self, cmd: &SearchCmd) -> Vec<Hit> {
        let s = &self.shared;
        // Linear-model work charged regardless of backend; the indexed
        // backend adds its own postings_touched measure on top.
        s.stats
            .lines_scanned
            .fetch_add(s.text.line_count() as u64, Ordering::Relaxed);
        let mut local = CacheStats::default();
        let hits = s.backend.search(&s.text, cmd, &mut local);
        s.stats
            .postings_touched
            .fetch_add(local.postings_touched, Ordering::Relaxed);
        hits
    }

    /// Runs (or replays from cache) a search command.
    pub fn run(&self, cmd: &SearchCmd) -> Vec<Hit> {
        if let Some(rec) = &self.recorder {
            rec.lock()
                .unwrap_or_else(|e| e.into_inner())
                .cmds
                .insert(cmd.clone());
        }
        let s = &self.shared;
        s.stats.commands.fetch_add(1, Ordering::Relaxed);
        if !s.caching.load(Ordering::Relaxed) {
            return self.execute(cmd);
        }
        // Single-flight: the shard lock is held across the backend call so
        // a concurrent requester of the same command waits and replays the
        // cached hits instead of re-executing (and re-charging) it. The
        // cache keys on the command value itself — no canonical-string
        // formatting on either the hit or the miss path.
        let mut shard = s.cmd_cache[shard_of(cmd)].lock().expect("cache poisoned");
        if let Some(hits) = shard.get(cmd) {
            s.stats.hits.fetch_add(1, Ordering::Relaxed);
            return hits.clone();
        }
        let hits = self.execute(cmd);
        shard.insert(cmd.clone(), hits.clone());
        hits
    }

    /// Classes whose code or hierarchy references `target` — the
    /// class-level "invoked by" search the recursive `<clinit>`
    /// reachability walk uses (§IV-C). Combines code-line hits (mapped to
    /// the containing method's class) with `Superclass`/`Interfaces`
    /// header hits.
    pub fn classes_using(&self, target: &ClassName) -> Vec<ClassName> {
        if let Some(rec) = &self.recorder {
            rec.lock()
                .unwrap_or_else(|e| e.into_inner())
                .class_uses
                .insert(target.clone());
        }
        let s = &self.shared;
        s.stats.commands.fetch_add(1, Ordering::Relaxed);
        let execute = || {
            s.stats
                .lines_scanned
                .fetch_add(s.text.line_count() as u64, Ordering::Relaxed);
            let mut local = CacheStats::default();
            let out = s.backend.classes_using(&s.text, target, &mut local);
            s.stats
                .postings_touched
                .fetch_add(local.postings_touched, Ordering::Relaxed);
            out
        };
        if !s.caching.load(Ordering::Relaxed) {
            return execute();
        }
        let mut shard = s.class_use_cache[shard_of(target)]
            .lock()
            .expect("cache poisoned");
        if let Some(cached) = shard.get(target) {
            s.stats.hits.fetch_add(1, Ordering::Relaxed);
            return cached.clone();
        }
        let out = execute();
        shard.insert(target.clone(), out.clone());
        out
    }
}

/// The linear class-level "invoked by" scan — the oracle implementation
/// shared by [`crate::LinearScan`] and mirrored (over candidates only) by
/// [`crate::Indexed`].
pub(crate) fn classes_using_scan(text: &BytecodeText, target: &ClassName) -> Vec<ClassName> {
    let desc = class_descriptor(target);
    let mut out: Vec<ClassName> = Vec::new();
    let mut push = |c: ClassName| {
        if c != *target && !out.contains(&c) {
            out.push(c);
        }
    };
    // Track the current class while scanning headers.
    let mut current_class: Option<ClassName> = None;
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("Class descriptor  : '") {
            if let Some(d) = rest.strip_suffix('\'') {
                if let Some(backdroid_ir::Type::Object(c)) = backdroid_ir::Type::from_descriptor(d)
                {
                    current_class = Some(c);
                }
            }
            continue;
        }
        if !line.contains(desc.as_str()) {
            continue;
        }
        if trimmed.starts_with("Superclass")
            || trimmed.starts_with("#") && trimmed.contains("'") && !trimmed.contains("(in ")
        {
            // Superclass / interface header referencing the target.
            if let Some(c) = current_class.clone() {
                push(c);
            }
            continue;
        }
        if let Some(m) = text.method_at_line(i) {
            push(m.class().clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::BytecodeText;
    use backdroid_dex::{dump_image, DexImage};
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Modifiers, Program, Type, Value};

    fn engine_for(p: &Program) -> SearchEngine {
        let dump = dump_image(&DexImage::encode(p));
        SearchEngine::new(BytecodeText::index(&dump))
    }

    fn engines_for_both(p: &Program) -> [SearchEngine; 2] {
        let dump = dump_image(&DexImage::encode(p));
        [
            SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::LinearScan),
            SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::Indexed),
        ]
    }

    fn sample() -> Program {
        let mut p = Program::new();
        let caller = ClassName::new("com.a.Caller");
        let callee_sig = MethodSig::new("com.a.Server", "start", vec![], Type::Void);
        let mut m = MethodBuilder::public(&caller, "go", vec![], Type::Void);
        let srv = m.new_object("com.a.Server", vec![], vec![]);
        m.invoke(InvokeExpr::call_virtual(callee_sig, srv, vec![]));
        let mode = m.assign_const(backdroid_ir::Const::str("AES/ECB/PKCS5Padding"));
        m.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![Value::Local(mode)],
        ));
        p.add_class(ClassBuilder::new(caller.as_str()).method(m.build()).build());
        let server = ClassName::new("com.a.Server");
        let mut ctor = MethodBuilder::constructor(&server, vec![]);
        ctor.ret_void();
        let mut start = MethodBuilder::public(&server, "start", vec![], Type::Void);
        let f = FieldSig::new(server.clone(), "PORT", Type::Int);
        let _v = start.read_static_field(f.clone());
        start.ret_void();
        p.add_class(
            ClassBuilder::new(server.as_str())
                .field("PORT", Type::Int, Modifiers::public_static())
                .method(ctor.build())
                .method(start.build())
                .build(),
        );
        p
    }

    /// Every command the sample program can answer, for oracle checks.
    fn battery() -> Vec<SearchCmd> {
        vec![
            SearchCmd::InvokeOf(MethodSig::new("com.a.Server", "start", vec![], Type::Void)),
            SearchCmd::NewInstanceOf(ClassName::new("com.a.Server")),
            SearchCmd::ConstClass(ClassName::new("com.a.Server")),
            SearchCmd::ConstString("AES/ECB/PKCS5Padding".into()),
            SearchCmd::ConstString("AES/ECB".into()),
            SearchCmd::FieldAccess(FieldSig::new("com.a.Server", "PORT", Type::Int)),
            SearchCmd::StaticFieldAccess(FieldSig::new("com.a.Server", "PORT", Type::Int)),
            SearchCmd::MethodNameCall("getInstance".into()),
            SearchCmd::MethodNameCall("missing".into()),
        ]
    }

    #[test]
    fn invoke_search_finds_caller() {
        let p = sample();
        let e = engine_for(&p);
        let hits = e.run(&SearchCmd::InvokeOf(MethodSig::new(
            "com.a.Server",
            "start",
            vec![],
            Type::Void,
        )));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.to_string(), "<com.a.Caller: void go()>");
    }

    #[test]
    fn new_instance_search_finds_allocation_site() {
        let p = sample();
        let e = engine_for(&p);
        let hits = e.run(&SearchCmd::NewInstanceOf(ClassName::new("com.a.Server")));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.class().as_str(), "com.a.Caller");
    }

    #[test]
    fn const_string_search() {
        let p = sample();
        let e = engine_for(&p);
        let hits = e.run(&SearchCmd::ConstString("AES/ECB/PKCS5Padding".into()));
        assert_eq!(hits.len(), 1);
        // Partial strings do not match (quotes delimit).
        let hits = e.run(&SearchCmd::ConstString("AES/ECB".into()));
        assert!(hits.is_empty());
    }

    #[test]
    fn static_field_search_excludes_instance_accesses() {
        let p = sample();
        let e = engine_for(&p);
        let f = FieldSig::new("com.a.Server", "PORT", Type::Int);
        let hits = e.run(&SearchCmd::StaticFieldAccess(f.clone()));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.name(), "start");
        let all = e.run(&SearchCmd::FieldAccess(f));
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn method_name_call_matches_any_class() {
        let p = sample();
        let e = engine_for(&p);
        let hits = e.run(&SearchCmd::MethodNameCall("getInstance".into()));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.class().as_str(), "com.a.Caller");
    }

    #[test]
    fn clones_share_cache_and_stats() {
        let p = sample();
        let e1 = engine_for(&p);
        let e2 = e1.clone();
        let cmd = SearchCmd::MethodNameCall("getInstance".into());
        let first = e1.run(&cmd);
        // The clone replays from the shared cache: one hit, no new scan.
        let lines_after_first = e1.stats().lines_scanned;
        let second = e2.run(&cmd);
        assert_eq!(first, second);
        let stats = e2.stats();
        assert_eq!(stats.commands, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.lines_scanned, lines_after_first);
    }

    #[test]
    fn concurrent_same_command_is_single_flight() {
        let p = sample();
        let e = engine_for(&p);
        let cmd = SearchCmd::InvokeOf(MethodSig::new("com.a.Server", "start", vec![], Type::Void));
        let n = 8;
        let results: Vec<Vec<Hit>> = std::thread::scope(|scope| {
            (0..n)
                .map(|_| {
                    let e = e.clone();
                    let cmd = cmd.clone();
                    scope.spawn(move || e.run(&cmd))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        for r in &results {
            assert_eq!(r, &results[0]);
        }
        let stats = e.stats();
        assert_eq!(stats.commands, n as u64);
        // Exactly one execution was charged, no matter the interleaving.
        assert_eq!(stats.hits, n as u64 - 1);
        assert_eq!(stats.lines_scanned, e.text().line_count() as u64);
    }

    #[test]
    fn stats_since_subtracts_a_snapshot() {
        let p = sample();
        let e = engine_for(&p);
        let _ = e.run(&SearchCmd::MethodNameCall("getInstance".into()));
        let baseline = e.stats();
        let _ = e.run(&SearchCmd::MethodNameCall("getInstance".into()));
        let delta = e.stats().since(&baseline);
        assert_eq!(delta.commands, 1);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.lines_scanned, 0);
    }

    #[test]
    fn cache_counts_repeat_commands() {
        let p = sample();
        let e = engine_for(&p);
        let cmd = SearchCmd::MethodNameCall("getInstance".into());
        let first = e.run(&cmd);
        let second = e.run(&cmd);
        assert_eq!(first, second);
        let stats = e.stats();
        assert_eq!(stats.commands, 2);
        assert_eq!(stats.hits, 1);
        assert!((stats.rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn backends_agree_on_every_command() {
        let p = sample();
        let [linear, indexed] = engines_for_both(&p);
        for cmd in battery() {
            assert_eq!(linear.run(&cmd), indexed.run(&cmd), "{}", cmd.canonical());
        }
        // Same linear-model accounting on both sides…
        assert_eq!(
            linear.stats().lines_scanned,
            indexed.stats().lines_scanned,
            "lines_scanned must be backend-independent"
        );
        // …but the indexed backend touched far less of the dump.
        assert_eq!(linear.stats().postings_touched, 0);
        assert!(indexed.stats().postings_touched < indexed.stats().lines_scanned);
    }

    #[test]
    fn backends_agree_on_classes_using() {
        let mut p = sample();
        let sub = ClassName::new("com.a.SubServer");
        let mut m = MethodBuilder::public(&sub, "noop", vec![], Type::Void);
        m.ret_void();
        p.add_class(
            ClassBuilder::new(sub.as_str())
                .extends("com.a.Server")
                .method(m.build())
                .build(),
        );
        let [linear, indexed] = engines_for_both(&p);
        for target in ["com.a.Server", "com.a.Caller", "com.absent.Class"] {
            let t = ClassName::new(target);
            assert_eq!(
                linear.classes_using(&t),
                indexed.classes_using(&t),
                "{target}"
            );
        }
    }

    #[test]
    fn classes_using_finds_code_and_hierarchy_refs() {
        let mut p = sample();
        // Add a subclass of Server: a hierarchy reference.
        let sub = ClassName::new("com.a.SubServer");
        let mut m = MethodBuilder::public(&sub, "noop", vec![], Type::Void);
        m.ret_void();
        p.add_class(
            ClassBuilder::new(sub.as_str())
                .extends("com.a.Server")
                .method(m.build())
                .build(),
        );
        let e = engine_for(&p);
        let users = e.classes_using(&ClassName::new("com.a.Server"));
        let names: Vec<&str> = users.iter().map(ClassName::as_str).collect();
        assert!(names.contains(&"com.a.Caller"), "code reference: {names:?}");
        assert!(
            names.contains(&"com.a.SubServer"),
            "hierarchy reference: {names:?}"
        );
        // Cached second call.
        let before = e.stats().hits;
        let _ = e.classes_using(&ClassName::new("com.a.Server"));
        assert_eq!(e.stats().hits, before + 1);
    }
}
