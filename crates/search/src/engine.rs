//! The search engine: grep-style commands over the bytecode plaintext,
//! with the multi-granularity caching of paper §IV-F and a pluggable
//! execution backend (linear oracle vs inverted index, see
//! [`crate::backend`]).

use crate::backend::{BackendChoice, SearchBackend};
use crate::text::BytecodeText;
use backdroid_dex::{class_descriptor, field_ref_string, method_ref_string};
use backdroid_ir::{ClassName, FieldSig, MethodSig};
use std::collections::HashMap;

/// One search command. Each corresponds to a grep the paper's tool issues
/// over the dexdump text.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum SearchCmd {
    /// Invocations of an exact method signature (the basic signature
    /// search of §IV-A).
    InvokeOf(MethodSig),
    /// `new-instance` allocations of a class (constructor location for the
    /// advanced search of §IV-B).
    NewInstanceOf(ClassName),
    /// `const-class` literals of a class (explicit-ICC parameters, §IV-D).
    ConstClass(ClassName),
    /// String literals (implicit-ICC action names, crypto transformation
    /// strings, …).
    ConstString(String),
    /// Any access (iget/iput/sget/sput) of a field.
    FieldAccess(FieldSig),
    /// Static accesses (sget/sput) of a field — used when a newly tainted
    /// static field must reveal its accessor methods (§V-A).
    StaticFieldAccess(FieldSig),
    /// Invocations whose callee *name* matches, regardless of class — used
    /// for ICC calls (`startService` on arbitrary context classes) and
    /// sink wrappers.
    MethodNameCall(String),
}

impl SearchCmd {
    /// The canonical textual command, used as the cache key (mirrors the
    /// "raw search commands" cache granularity of §IV-F).
    pub fn canonical(&self) -> String {
        match self {
            SearchCmd::InvokeOf(m) => format!("invoke:{}", method_ref_string(m)),
            SearchCmd::NewInstanceOf(c) => format!("new:{}", class_descriptor(c)),
            SearchCmd::ConstClass(c) => format!("const-class:{}", class_descriptor(c)),
            SearchCmd::ConstString(s) => format!("const-string:\"{s}\""),
            SearchCmd::FieldAccess(f) => format!("field:{}", field_ref_string(f)),
            SearchCmd::StaticFieldAccess(f) => format!("sfield:{}", field_ref_string(f)),
            SearchCmd::MethodNameCall(n) => format!("call-name:;.{n}:("),
        }
    }

    /// The substring the command greps for — both backends match lines
    /// against this exact needle, which is what keeps them hit-for-hit
    /// identical.
    pub fn needle(&self) -> String {
        match self {
            SearchCmd::InvokeOf(m) => method_ref_string(m),
            SearchCmd::NewInstanceOf(c) => class_descriptor(c),
            SearchCmd::ConstClass(c) => class_descriptor(c),
            SearchCmd::ConstString(s) => format!("\"{s}\""),
            SearchCmd::FieldAccess(f) => field_ref_string(f),
            SearchCmd::StaticFieldAccess(f) => field_ref_string(f),
            SearchCmd::MethodNameCall(n) => format!(";.{n}:("),
        }
    }

    /// The opcode guard a matching line must additionally satisfy (e.g.
    /// an `InvokeOf` needle inside a `new-instance` operand is not a
    /// call site).
    pub fn line_guard(&self) -> fn(&str) -> bool {
        match self {
            SearchCmd::InvokeOf(_) => |l| l.contains("invoke-"),
            SearchCmd::NewInstanceOf(_) => |l| l.contains("new-instance"),
            SearchCmd::ConstClass(_) => |l| l.contains("const-class"),
            SearchCmd::ConstString(_) => |l| l.contains("const-string"),
            SearchCmd::FieldAccess(_) => |l| {
                l.contains("iget") || l.contains("iput") || l.contains("sget") || l.contains("sput")
            },
            SearchCmd::StaticFieldAccess(_) => |l| l.contains("sget") || l.contains("sput"),
            SearchCmd::MethodNameCall(_) => |l| l.contains("invoke-"),
        }
    }
}

/// One search hit: the containing method and the dump line.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Hit {
    /// Method whose code contains the matching line.
    pub method: MethodSig,
    /// Line index into the dump.
    pub line: usize,
}

/// Cache statistics, reported per app (§IV-F: "the cache rate of our
/// search commands in each app is 23.39% on average").
///
/// Two work measures coexist so the bench harness can report both cost
/// models: `lines_scanned` is the **linear model** — the grep lines the
/// paper's tool would scan for the uncached commands issued, charged
/// identically under either backend so detection output and the
/// paper-calibrated scaled minutes never depend on the backend choice —
/// and `postings_touched` is the **indexed model** — the candidate lines
/// the [`Indexed`](crate::Indexed) backend actually examined (zero under
/// [`LinearScan`](crate::LinearScan), where the actual work *is*
/// `lines_scanned`).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct CacheStats {
    /// Total search commands issued.
    pub commands: u64,
    /// Commands answered from cache.
    pub hits: u64,
    /// Linear-model grep work: dump lines a full scan covers for each
    /// non-cached command (backend-independent).
    pub lines_scanned: u64,
    /// Indexed-model work: posting-list candidate lines examined by the
    /// [`Indexed`](crate::Indexed) backend (zero under
    /// [`LinearScan`](crate::LinearScan)).
    pub postings_touched: u64,
}

impl CacheStats {
    /// Cache hit rate in `[0, 1]`; zero when no command was issued.
    pub fn rate(&self) -> f64 {
        if self.commands == 0 {
            0.0
        } else {
            self.hits as f64 / self.commands as f64
        }
    }
}

/// The per-app search engine: owns the indexed text, the caches, and the
/// execution backend.
#[derive(Debug)]
pub struct SearchEngine {
    text: BytecodeText,
    backend: Box<dyn SearchBackend>,
    backend_choice: BackendChoice,
    cache: HashMap<String, Vec<Hit>>,
    class_use_cache: HashMap<ClassName, Vec<ClassName>>,
    stats: CacheStats,
    caching: bool,
}

impl SearchEngine {
    /// Creates an engine over an indexed dump with the default backend
    /// ([`BackendChoice::Indexed`]).
    pub fn new(text: BytecodeText) -> Self {
        Self::with_backend(text, BackendChoice::default())
    }

    /// Creates an engine with an explicit backend choice.
    pub fn with_backend(text: BytecodeText, choice: BackendChoice) -> Self {
        SearchEngine {
            text,
            backend: choice.backend(),
            backend_choice: choice,
            cache: HashMap::new(),
            class_use_cache: HashMap::new(),
            stats: CacheStats::default(),
            caching: true,
        }
    }

    /// Disables the search caches — used by the caching ablation bench to
    /// quantify the §IV-F enhancement.
    pub fn set_caching(&mut self, enabled: bool) {
        self.caching = enabled;
    }

    /// The underlying indexed text.
    pub fn text(&self) -> &BytecodeText {
        &self.text
    }

    /// The backend executing uncached commands.
    pub fn backend_choice(&self) -> BackendChoice {
        self.backend_choice
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Runs (or replays from cache) a search command.
    pub fn run(&mut self, cmd: &SearchCmd) -> Vec<Hit> {
        let key = cmd.canonical();
        self.stats.commands += 1;
        if self.caching {
            if let Some(hits) = self.cache.get(&key) {
                self.stats.hits += 1;
                return hits.clone();
            }
        }
        // Linear-model work charged regardless of backend; the indexed
        // backend adds its own postings_touched measure on top.
        self.stats.lines_scanned += self.text.lines().len() as u64;
        let hits = self.backend.search(&self.text, cmd, &mut self.stats);
        if self.caching {
            self.cache.insert(key, hits.clone());
        }
        hits
    }

    /// Classes whose code or hierarchy references `target` — the
    /// class-level "invoked by" search the recursive `<clinit>`
    /// reachability walk uses (§IV-C). Combines code-line hits (mapped to
    /// the containing method's class) with `Superclass`/`Interfaces`
    /// header hits.
    pub fn classes_using(&mut self, target: &ClassName) -> Vec<ClassName> {
        self.stats.commands += 1;
        if self.caching {
            if let Some(cached) = self.class_use_cache.get(target) {
                self.stats.hits += 1;
                return cached.clone();
            }
        }
        self.stats.lines_scanned += self.text.lines().len() as u64;
        let out = self
            .backend
            .classes_using(&self.text, target, &mut self.stats);
        if self.caching {
            self.class_use_cache.insert(target.clone(), out.clone());
        }
        out
    }
}

/// The linear class-level "invoked by" scan — the oracle implementation
/// shared by [`crate::LinearScan`] and mirrored (over candidates only) by
/// [`crate::Indexed`].
pub(crate) fn classes_using_scan(text: &BytecodeText, target: &ClassName) -> Vec<ClassName> {
    let desc = class_descriptor(target);
    let mut out: Vec<ClassName> = Vec::new();
    let mut push = |c: ClassName| {
        if c != *target && !out.contains(&c) {
            out.push(c);
        }
    };
    // Track the current class while scanning headers.
    let mut current_class: Option<ClassName> = None;
    for (i, line) in text.lines().iter().enumerate() {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("Class descriptor  : '") {
            if let Some(d) = rest.strip_suffix('\'') {
                if let Some(backdroid_ir::Type::Object(c)) = backdroid_ir::Type::from_descriptor(d)
                {
                    current_class = Some(c);
                }
            }
            continue;
        }
        if !line.contains(desc.as_str()) {
            continue;
        }
        if trimmed.starts_with("Superclass")
            || trimmed.starts_with("#") && trimmed.contains("'") && !trimmed.contains("(in ")
        {
            // Superclass / interface header referencing the target.
            if let Some(c) = current_class.clone() {
                push(c);
            }
            continue;
        }
        if let Some(m) = text.method_at_line(i) {
            push(m.class().clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::BytecodeText;
    use backdroid_dex::{dump_image, DexImage};
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Modifiers, Program, Type, Value};

    fn engine_for(p: &Program) -> SearchEngine {
        let dump = dump_image(&DexImage::encode(p));
        SearchEngine::new(BytecodeText::index(&dump))
    }

    fn engines_for_both(p: &Program) -> [SearchEngine; 2] {
        let dump = dump_image(&DexImage::encode(p));
        [
            SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::LinearScan),
            SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::Indexed),
        ]
    }

    fn sample() -> Program {
        let mut p = Program::new();
        let caller = ClassName::new("com.a.Caller");
        let callee_sig = MethodSig::new("com.a.Server", "start", vec![], Type::Void);
        let mut m = MethodBuilder::public(&caller, "go", vec![], Type::Void);
        let srv = m.new_object("com.a.Server", vec![], vec![]);
        m.invoke(InvokeExpr::call_virtual(callee_sig, srv, vec![]));
        let mode = m.assign_const(backdroid_ir::Const::str("AES/ECB/PKCS5Padding"));
        m.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![Value::Local(mode)],
        ));
        p.add_class(ClassBuilder::new(caller.as_str()).method(m.build()).build());
        let server = ClassName::new("com.a.Server");
        let mut ctor = MethodBuilder::constructor(&server, vec![]);
        ctor.ret_void();
        let mut start = MethodBuilder::public(&server, "start", vec![], Type::Void);
        let f = FieldSig::new(server.clone(), "PORT", Type::Int);
        let _v = start.read_static_field(f.clone());
        start.ret_void();
        p.add_class(
            ClassBuilder::new(server.as_str())
                .field("PORT", Type::Int, Modifiers::public_static())
                .method(ctor.build())
                .method(start.build())
                .build(),
        );
        p
    }

    /// Every command the sample program can answer, for oracle checks.
    fn battery() -> Vec<SearchCmd> {
        vec![
            SearchCmd::InvokeOf(MethodSig::new("com.a.Server", "start", vec![], Type::Void)),
            SearchCmd::NewInstanceOf(ClassName::new("com.a.Server")),
            SearchCmd::ConstClass(ClassName::new("com.a.Server")),
            SearchCmd::ConstString("AES/ECB/PKCS5Padding".into()),
            SearchCmd::ConstString("AES/ECB".into()),
            SearchCmd::FieldAccess(FieldSig::new("com.a.Server", "PORT", Type::Int)),
            SearchCmd::StaticFieldAccess(FieldSig::new("com.a.Server", "PORT", Type::Int)),
            SearchCmd::MethodNameCall("getInstance".into()),
            SearchCmd::MethodNameCall("missing".into()),
        ]
    }

    #[test]
    fn invoke_search_finds_caller() {
        let p = sample();
        let mut e = engine_for(&p);
        let hits = e.run(&SearchCmd::InvokeOf(MethodSig::new(
            "com.a.Server",
            "start",
            vec![],
            Type::Void,
        )));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.to_string(), "<com.a.Caller: void go()>");
    }

    #[test]
    fn new_instance_search_finds_allocation_site() {
        let p = sample();
        let mut e = engine_for(&p);
        let hits = e.run(&SearchCmd::NewInstanceOf(ClassName::new("com.a.Server")));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.class().as_str(), "com.a.Caller");
    }

    #[test]
    fn const_string_search() {
        let p = sample();
        let mut e = engine_for(&p);
        let hits = e.run(&SearchCmd::ConstString("AES/ECB/PKCS5Padding".into()));
        assert_eq!(hits.len(), 1);
        // Partial strings do not match (quotes delimit).
        let hits = e.run(&SearchCmd::ConstString("AES/ECB".into()));
        assert!(hits.is_empty());
    }

    #[test]
    fn static_field_search_excludes_instance_accesses() {
        let p = sample();
        let mut e = engine_for(&p);
        let f = FieldSig::new("com.a.Server", "PORT", Type::Int);
        let hits = e.run(&SearchCmd::StaticFieldAccess(f.clone()));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.name(), "start");
        let all = e.run(&SearchCmd::FieldAccess(f));
        assert_eq!(all.len(), 1);
    }

    #[test]
    fn method_name_call_matches_any_class() {
        let p = sample();
        let mut e = engine_for(&p);
        let hits = e.run(&SearchCmd::MethodNameCall("getInstance".into()));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].method.class().as_str(), "com.a.Caller");
    }

    #[test]
    fn cache_counts_repeat_commands() {
        let p = sample();
        let mut e = engine_for(&p);
        let cmd = SearchCmd::MethodNameCall("getInstance".into());
        let first = e.run(&cmd);
        let second = e.run(&cmd);
        assert_eq!(first, second);
        let stats = e.stats();
        assert_eq!(stats.commands, 2);
        assert_eq!(stats.hits, 1);
        assert!((stats.rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn backends_agree_on_every_command() {
        let p = sample();
        let [mut linear, mut indexed] = engines_for_both(&p);
        for cmd in battery() {
            assert_eq!(linear.run(&cmd), indexed.run(&cmd), "{}", cmd.canonical());
        }
        // Same linear-model accounting on both sides…
        assert_eq!(
            linear.stats().lines_scanned,
            indexed.stats().lines_scanned,
            "lines_scanned must be backend-independent"
        );
        // …but the indexed backend touched far less of the dump.
        assert_eq!(linear.stats().postings_touched, 0);
        assert!(indexed.stats().postings_touched < indexed.stats().lines_scanned);
    }

    #[test]
    fn backends_agree_on_classes_using() {
        let mut p = sample();
        let sub = ClassName::new("com.a.SubServer");
        let mut m = MethodBuilder::public(&sub, "noop", vec![], Type::Void);
        m.ret_void();
        p.add_class(
            ClassBuilder::new(sub.as_str())
                .extends("com.a.Server")
                .method(m.build())
                .build(),
        );
        let [mut linear, mut indexed] = engines_for_both(&p);
        for target in ["com.a.Server", "com.a.Caller", "com.absent.Class"] {
            let t = ClassName::new(target);
            assert_eq!(
                linear.classes_using(&t),
                indexed.classes_using(&t),
                "{target}"
            );
        }
    }

    #[test]
    fn classes_using_finds_code_and_hierarchy_refs() {
        let mut p = sample();
        // Add a subclass of Server: a hierarchy reference.
        let sub = ClassName::new("com.a.SubServer");
        let mut m = MethodBuilder::public(&sub, "noop", vec![], Type::Void);
        m.ret_void();
        p.add_class(
            ClassBuilder::new(sub.as_str())
                .extends("com.a.Server")
                .method(m.build())
                .build(),
        );
        let mut e = engine_for(&p);
        let users = e.classes_using(&ClassName::new("com.a.Server"));
        let names: Vec<&str> = users.iter().map(ClassName::as_str).collect();
        assert!(names.contains(&"com.a.Caller"), "code reference: {names:?}");
        assert!(
            names.contains(&"com.a.SubServer"),
            "hierarchy reference: {names:?}"
        );
        // Cached second call.
        let before = e.stats().hits;
        let _ = e.classes_using(&ClassName::new("com.a.Server"));
        assert_eq!(e.stats().hits, before + 1);
    }
}
