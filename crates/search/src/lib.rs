//! # backdroid-search
//!
//! The on-the-fly bytecode text search engine (paper §IV): grep-style
//! commands over a merged dexdump plaintext, with line → method
//! resolution, inner-class `$` restoration, and the layered caching of
//! §IV-F whose hit rates the evaluation reports.
//!
//! ## Search backends
//!
//! Uncached commands execute through a pluggable [`SearchBackend`]:
//!
//! * [`LinearScan`] — the paper's grep, touching every dump line per
//!   query. Kept as the correctness oracle: its cost is what the bench
//!   harness's paper-calibrated "scaled minutes" model.
//! * [`Indexed`] *(default)* — posting lists ([`SearchIndex`]) built by
//!   one tokenization pass over the text indexed by
//!   [`BytecodeText::index`] (lazily, on the first indexed query) and
//!   keyed by tokens **interned** into a [`SymbolTable`] (dense `u32`
//!   ids over one string arena), so a probe hashes the needle once and
//!   compares at most one arena slice — no key formatting or
//!   per-query allocation on the hot path; each query touches only
//!   candidate lines, re-verified with the oracle's exact needle +
//!   guard predicate, so the two backends are **hit-for-hit
//!   identical** while indexed work scales with matches instead of app
//!   size.
//!
//! Pick a backend per engine with [`SearchEngine::with_backend`] (or
//! through `backdroid_core::BackdroidOptions::backend` /
//! `AppArtifacts::with_backend` one layer up). Work accounting in
//! [`CacheStats`]: `lines_scanned` is the linear-model grep cost, charged
//! identically under either backend so every detection figure is
//! backend-invariant; `postings_touched` is the candidate lines the
//! indexed backend actually examined (zero under the oracle). The bench
//! harness converts both into scaled minutes to report the two cost
//! models side by side.
//!
//! ## Concurrency model
//!
//! [`SearchEngine`] is a cheaply cloneable handle (`Clone` shares one
//! `Arc`'d interior) whose methods all take `&self`, so one engine can
//! serve many analysis tasks slicing different sink sites of the same
//! app in parallel:
//!
//! * the command cache and the class-level "invoked by" cache are
//!   **sharded** — 16 lock-striped hash maps keyed by the command
//!   value itself, so concurrent tasks rarely contend and a cache hit
//!   never formats a key string;
//! * cache fills are **single-flight** — the shard lock is held across
//!   the backend call, so N tasks missing the same key charge exactly
//!   one execution and N−1 hits, keeping [`CacheStats`] (and therefore
//!   the paper-calibrated scaled minutes) deterministic under any
//!   thread interleaving;
//! * statistics are engine-wide atomic counters; [`CacheStats::since`]
//!   recovers a per-analysis delta from a long-lived shared engine;
//! * the posting lists build lazily through a `OnceLock`, so the first
//!   indexed query from any thread pays the one tokenization pass —
//!   and a text restored from snapshot sections
//!   ([`BytecodeText::from_sections`]) defers even the arena copy and
//!   posting decode until something reads them.
//!
//! ```
//! use backdroid_search::{BackendChoice, BytecodeText, SearchCmd, SearchEngine};
//! use backdroid_dex::{dump_image, DexImage};
//! use backdroid_ir::{ClassBuilder, ClassName, InvokeExpr, MethodBuilder, MethodSig, Program, Type};
//!
//! // Build a one-class app whose go() calls Server.start().
//! let caller = ClassName::new("com.a.Caller");
//! let callee = MethodSig::new("com.a.Server", "start", vec![], Type::Void);
//! let mut m = MethodBuilder::public(&caller, "go", vec![], Type::Void);
//! let srv = m.new_object("com.a.Server", vec![], vec![]);
//! m.invoke(InvokeExpr::call_virtual(callee.clone(), srv, vec![]));
//! let mut p = Program::new();
//! p.add_class(ClassBuilder::new("com.a.Caller").method(m.build()).build());
//!
//! // Disassemble, index, and search for the caller of Server.start() —
//! // once through the posting lists, once through the linear oracle.
//! let dump = dump_image(&DexImage::encode(&p));
//! let engine = SearchEngine::new(BytecodeText::index(&dump)); // Indexed by default
//! let hits = engine.run(&SearchCmd::InvokeOf(callee.clone()));
//! assert_eq!(hits[0].method.to_string(), "<com.a.Caller: void go()>");
//!
//! let oracle = SearchEngine::with_backend(BytecodeText::index(&dump), BackendChoice::LinearScan);
//! assert_eq!(oracle.run(&SearchCmd::InvokeOf(callee)), hits);
//! assert!(engine.stats().postings_touched < oracle.stats().lines_scanned);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
mod engine;
mod index;
mod symbol;
mod text;

pub use backend::{BackendChoice, Indexed, LinearScan, SearchBackend};
pub use engine::{CacheStats, Hit, SearchCmd, SearchEngine, SearchTrace};
pub use index::{ClassSegment, ClassTokens, SearchIndex, TokenCache};
pub use symbol::{Sym, SymbolTable};
pub use text::{parse_proto, BytecodeText, MethodSpan};

#[doc(hidden)]
pub use index::string_keyed_postings;
