//! # backdroid-search
//!
//! The on-the-fly bytecode text search engine (paper §IV): grep-style
//! commands over a merged dexdump plaintext, with line → method
//! resolution, inner-class `$` restoration, and the layered caching of
//! §IV-F whose hit rates the evaluation reports.
//!
//! ```
//! use backdroid_search::{BytecodeText, SearchCmd, SearchEngine};
//! use backdroid_dex::{dump_image, DexImage};
//! use backdroid_ir::{ClassBuilder, ClassName, InvokeExpr, MethodBuilder, MethodSig, Program, Type};
//!
//! // Build a one-class app whose go() calls Server.start().
//! let caller = ClassName::new("com.a.Caller");
//! let callee = MethodSig::new("com.a.Server", "start", vec![], Type::Void);
//! let mut m = MethodBuilder::public(&caller, "go", vec![], Type::Void);
//! let srv = m.new_object("com.a.Server", vec![], vec![]);
//! m.invoke(InvokeExpr::call_virtual(callee.clone(), srv, vec![]));
//! let mut p = Program::new();
//! p.add_class(ClassBuilder::new("com.a.Caller").method(m.build()).build());
//!
//! // Disassemble, index, and search for the caller of Server.start().
//! let dump = dump_image(&DexImage::encode(&p));
//! let mut engine = SearchEngine::new(BytecodeText::index(&dump));
//! let hits = engine.run(&SearchCmd::InvokeOf(callee));
//! assert_eq!(hits[0].method.to_string(), "<com.a.Caller: void go()>");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod text;

pub use engine::{CacheStats, Hit, SearchCmd, SearchEngine};
pub use text::{parse_proto, BytecodeText, MethodSpan};
