//! Pluggable search execution: the linear-grep oracle and the
//! posting-list backend.
//!
//! A [`SearchBackend`] answers one uncached [`SearchCmd`] (or one
//! class-level "invoked by" query) over an indexed dump. Two
//! implementations exist:
//!
//! * [`LinearScan`] — the paper's grep: every query walks every dump
//!   line. Kept as the correctness oracle.
//! * [`Indexed`] — looks up the [`SearchIndex`](crate::SearchIndex)
//!   posting list (built lazily on first use) and re-verifies
//!   only the candidate lines with the very same needle + guard predicate
//!   the oracle uses, so results are hit-for-hit identical while work
//!   scales with matches instead of app size.
//!
//! Work accounting: the engine charges `lines_scanned` (the linear-model
//! grep cost) for every cache miss regardless of backend, so detection
//! output and the paper-calibrated scaled minutes never depend on the
//! backend choice; [`Indexed`] additionally records the candidate lines
//! it actually touched in
//! [`CacheStats::postings_touched`](crate::CacheStats::postings_touched).

use crate::engine::{classes_using_scan, CacheStats, Hit, SearchCmd};
use crate::text::BytecodeText;
use backdroid_dex::class_descriptor;
use backdroid_ir::ClassName;

/// Executes uncached search commands over one dump.
pub trait SearchBackend: std::fmt::Debug + Send + Sync {
    /// Short backend name for reports (`"linear"` / `"indexed"`).
    fn name(&self) -> &'static str;

    /// Answers one search command. `stats` receives the backend-specific
    /// work measure (the engine has already charged the linear-model
    /// `lines_scanned`).
    fn search(&self, text: &BytecodeText, cmd: &SearchCmd, stats: &mut CacheStats) -> Vec<Hit>;

    /// Classes whose code or hierarchy references `target` (the §IV-C
    /// class-level search).
    fn classes_using(
        &self,
        text: &BytecodeText,
        target: &ClassName,
        stats: &mut CacheStats,
    ) -> Vec<ClassName>;
}

/// Which backend a [`SearchEngine`](crate::SearchEngine) executes
/// uncached commands with. Both return identical hits; they differ only
/// in how much of the dump they touch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum BackendChoice {
    /// Full-dump grep per query (the paper's cost model; the oracle).
    LinearScan,
    /// Posting-list lookups per query (the default).
    #[default]
    Indexed,
}

impl BackendChoice {
    /// Instantiates the chosen backend.
    pub fn backend(self) -> Box<dyn SearchBackend> {
        match self {
            BackendChoice::LinearScan => Box::new(LinearScan),
            BackendChoice::Indexed => Box::new(Indexed),
        }
    }

    /// The backend's report name.
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::LinearScan => "linear",
            BackendChoice::Indexed => "indexed",
        }
    }

    /// Parses `"linear"` / `"indexed"` (as accepted by the bench bins'
    /// `--backend` flag).
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s {
            "linear" | "linear-scan" | "linearscan" => Some(BackendChoice::LinearScan),
            "indexed" | "index" => Some(BackendChoice::Indexed),
            _ => None,
        }
    }
}

/// The oracle backend: every query greps every dump line.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearScan;

impl SearchBackend for LinearScan {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn search(&self, text: &BytecodeText, cmd: &SearchCmd, _stats: &mut CacheStats) -> Vec<Hit> {
        let needle = cmd.needle();
        let guard = cmd.line_guard();
        let mut hits = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if !line.contains(needle.as_str()) || !guard(line) {
                continue;
            }
            if let Some(method) = text.method_at_line(i) {
                hits.push(Hit {
                    method: method.clone(),
                    line: i,
                });
            }
        }
        hits
    }

    fn classes_using(
        &self,
        text: &BytecodeText,
        target: &ClassName,
        _stats: &mut CacheStats,
    ) -> Vec<ClassName> {
        classes_using_scan(text, target)
    }
}

/// The posting-list backend: every query touches only its candidate
/// lines, each re-verified with the oracle's predicate.
#[derive(Clone, Copy, Debug, Default)]
pub struct Indexed;

impl SearchBackend for Indexed {
    fn name(&self) -> &'static str {
        "indexed"
    }

    fn search(&self, text: &BytecodeText, cmd: &SearchCmd, stats: &mut CacheStats) -> Vec<Hit> {
        let needle = cmd.needle();
        let guard = cmd.line_guard();
        let candidates = text.search_index().candidates(cmd);
        stats.postings_touched += candidates.len() as u64;
        let mut hits = Vec::new();
        for &i in candidates {
            let i = i as usize;
            let line = text.line(i);
            if !line.contains(needle.as_str()) || !guard(line) {
                continue;
            }
            if let Some(method) = text.method_at_line(i) {
                hits.push(Hit {
                    method: method.clone(),
                    line: i,
                });
            }
        }
        hits
    }

    fn classes_using(
        &self,
        text: &BytecodeText,
        target: &ClassName,
        stats: &mut CacheStats,
    ) -> Vec<ClassName> {
        let desc = class_descriptor(target);
        let index = text.search_index();
        let candidates = index.class_candidates(&desc);
        stats.postings_touched += candidates.len() as u64;
        let mut out: Vec<ClassName> = Vec::new();
        let mut push = |c: ClassName| {
            if c != *target && !out.contains(&c) {
                out.push(c);
            }
        };
        for &i in candidates {
            let i = i as usize;
            let line = text.line(i);
            let trimmed = line.trim_start();
            // Class-descriptor headers only *define* the section owner;
            // the linear scan skips them before its contains check.
            if trimmed.strip_prefix("Class descriptor  : '").is_some() {
                continue;
            }
            if !line.contains(desc.as_str()) {
                continue;
            }
            if trimmed.starts_with("Superclass")
                || trimmed.starts_with("#") && trimmed.contains("'") && !trimmed.contains("(in ")
            {
                if let Some(c) = index.owner_class_of(i) {
                    push(c.clone());
                }
                continue;
            }
            if let Some(m) = text.method_at_line(i) {
                push(m.class().clone());
            }
        }
        out
    }
}
