//! Symbol interning for the search core.
//!
//! The inverted index used to key its posting lists by freshly
//! `format!`-ed `String`s, so every probe paid an allocation plus a
//! full string hash + compare against the map's keys. [`SymbolTable`]
//! replaces that with an intern pool: every distinct token is stored
//! exactly once in a contiguous text arena and addressed by a dense
//! `u32` [`Sym`] id, assigned in first-encounter order. Tokenization
//! interns each occurrence once at build time; queries *probe* the
//! table with the needle split into borrowed parts (namespace prefix +
//! payload) — the FNV-1a hash streams across the parts, so a probe
//! allocates nothing and compares at most the one arena slice whose
//! hash matched.
//!
//! The table is wire-serializable as a bare ordered string list
//! ([`SymbolTable::write_wire`]), which makes the id assignment part of
//! the snapshot contract: `Sym` `k` always names the `k`-th stored
//! string, so posting lists serialized in id order need no keys at all.

use backdroid_ir::wire::{WireError, WireReader, WireWriter};

/// A dense interned-symbol id: index of the string in its
/// [`SymbolTable`], assigned in first-encounter order.
pub type Sym = u32;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streams `bytes` into an in-progress FNV-1a64 hash.
fn fnv_accum(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a64 over the concatenation of `parts`, without concatenating.
fn hash_parts(parts: &[&str]) -> u64 {
    parts
        .iter()
        .fold(FNV_OFFSET, |h, p| fnv_accum(h, p.as_bytes()))
}

/// A string ↔ [`Sym`] intern pool backed by one contiguous text arena.
///
/// Layout: all interned strings concatenated in `text`, addressed by
/// `(offset, len)` spans; an open-addressing (linear-probe) bucket
/// array maps FNV-1a64 hashes to ids. Equality checks compare the
/// probe's parts piecewise against the arena slice — no temporary
/// concatenation on either the intern or the lookup path.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every interned string, concatenated in id order.
    text: String,
    /// Per-symbol `(offset, len)` into `text`, indexed by [`Sym`].
    spans: Vec<(u32, u32)>,
    /// Per-symbol FNV-1a64 hash (avoids re-hashing on resize/compare).
    hashes: Vec<u64>,
    /// Open-addressing buckets holding `sym + 1` (`0` = empty); always
    /// a power of two.
    buckets: Vec<u32>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no symbol has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The string a symbol stands for. Panics if `sym` was not issued
    /// by this table.
    pub fn resolve(&self, sym: Sym) -> &str {
        let (off, len) = self.spans[sym as usize];
        &self.text[off as usize..(off + len) as usize]
    }

    /// All symbols with their strings, in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        (0..self.spans.len() as u32).map(move |sym| (sym, self.resolve(sym)))
    }

    /// Whether symbol `sym`'s string equals the concatenation of
    /// `parts`, compared piecewise against the arena slice.
    fn equals_parts(&self, sym: Sym, parts: &[&str]) -> bool {
        let mut cur = self.resolve(sym);
        for part in parts {
            match cur.strip_prefix(part) {
                Some(rest) => cur = rest,
                None => return false,
            }
        }
        cur.is_empty()
    }

    /// Interns the concatenation of `parts`, returning its id —
    /// existing symbols are found without allocating; new symbols
    /// append to the arena exactly once.
    pub fn intern(&mut self, parts: &[&str]) -> Sym {
        if self.buckets.is_empty() {
            self.rebuild_buckets(16);
        } else if (self.spans.len() + 1) * 8 > self.buckets.len() * 7 {
            // Keep the load factor below 7/8 so probe chains stay short.
            self.rebuild_buckets(self.buckets.len() * 2);
        }
        let h = hash_parts(parts);
        let mask = self.buckets.len() - 1;
        let mut slot = (h as usize) & mask;
        loop {
            match self.buckets[slot] {
                0 => {
                    let sym = self.spans.len() as Sym;
                    let off = self.text.len() as u32;
                    for part in parts {
                        self.text.push_str(part);
                    }
                    self.spans.push((off, self.text.len() as u32 - off));
                    self.hashes.push(h);
                    self.buckets[slot] = sym + 1;
                    return sym;
                }
                entry => {
                    let sym = entry - 1;
                    if self.hashes[sym as usize] == h && self.equals_parts(sym, parts) {
                        return sym;
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Finds the id of the concatenation of `parts` without interning —
    /// the allocation-free query-path probe.
    pub fn lookup(&self, parts: &[&str]) -> Option<Sym> {
        if self.buckets.is_empty() {
            return None;
        }
        let h = hash_parts(parts);
        let mask = self.buckets.len() - 1;
        let mut slot = (h as usize) & mask;
        loop {
            match self.buckets[slot] {
                0 => return None,
                entry => {
                    let sym = entry - 1;
                    if self.hashes[sym as usize] == h && self.equals_parts(sym, parts) {
                        return Some(sym);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Re-slots every symbol into a fresh bucket array of `cap` slots
    /// (a power of two).
    fn rebuild_buckets(&mut self, cap: usize) {
        let mut buckets = vec![0u32; cap];
        let mask = cap - 1;
        for (i, &h) in self.hashes.iter().enumerate() {
            let mut slot = (h as usize) & mask;
            while buckets[slot] != 0 {
                slot = (slot + 1) & mask;
            }
            buckets[slot] = i as u32 + 1;
        }
        self.buckets = buckets;
    }

    /// Wire-encodes the table as its strings in id order. The id
    /// assignment is thereby part of the encoding: symbol `k` is the
    /// `k`-th string. Deterministic — equal tables (same strings in the
    /// same order) encode byte-identically.
    pub fn write_wire(&self, w: &mut WireWriter) {
        w.put_len(self.spans.len());
        for sym in 0..self.spans.len() as u32 {
            w.put_str(self.resolve(sym));
        }
    }

    /// Decodes a table written by [`SymbolTable::write_wire`],
    /// rejecting duplicate strings (which would silently remap ids).
    pub fn read_wire(r: &mut WireReader<'_>) -> Result<SymbolTable, WireError> {
        let n = r.get_len(1)?;
        let mut table = SymbolTable::default();
        for i in 0..n {
            let s = r.get_str()?;
            // A duplicate string interns to its earlier id instead of `i`.
            if table.intern(&[s]) as usize != i {
                return Err(WireError::Malformed("duplicate interned symbol".into()));
            }
        }
        Ok(table)
    }

    /// Structurally validates an encoded table without building it:
    /// checks the string list decodes, is fully consumed, and holds no
    /// duplicates (hash-sorted, ties compared byte-wise). Returns the
    /// symbol count. Used by the lazy snapshot restore to reject a
    /// malformed section eagerly while deferring the arena build.
    pub fn validate_wire(bytes: &[u8]) -> Result<usize, WireError> {
        let mut r = WireReader::new(bytes);
        let n = r.get_len(1)?;
        let mut seen: Vec<(u64, &str)> = Vec::with_capacity(n);
        for _ in 0..n {
            let s = r.get_str()?;
            seen.push((fnv_accum(FNV_OFFSET, s.as_bytes()), s));
        }
        if !r.is_empty() {
            return Err(WireError::Malformed(
                "trailing bytes after symbol table".into(),
            ));
        }
        seen.sort_unstable();
        if seen.windows(2).any(|w| w[0] == w[1]) {
            return Err(WireError::Malformed("duplicate interned symbol".into()));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut t = SymbolTable::new();
        let a = t.intern(&["i:", "Lcom/a/B;.go:()V"]);
        let b = t.intern(&["s:", "AES"]);
        let a2 = t.intern(&["i:", "Lcom/a/B;.go:()V"]);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a2, a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "i:Lcom/a/B;.go:()V");
        assert_eq!(t.resolve(b), "s:AES");
    }

    #[test]
    fn lookup_matches_intern_across_part_splits() {
        let mut t = SymbolTable::new();
        let sym = t.intern(&["c:", "Lcom/a/B;"]);
        // Any split of the same concatenation finds the same symbol.
        assert_eq!(t.lookup(&["c:", "Lcom/a/B;"]), Some(sym));
        assert_eq!(t.lookup(&["c:Lcom/a/B;"]), Some(sym));
        assert_eq!(t.lookup(&["c:L", "com/a/B;"]), Some(sym));
        assert_eq!(t.lookup(&["c:", "Lcom/a/X;"]), None);
        // Part boundaries are not symbol boundaries: a prefix is no hit.
        assert_eq!(t.lookup(&["c:"]), None);
        assert_eq!(t.lookup(&[]), None);
    }

    #[test]
    fn growth_preserves_every_symbol() {
        let mut t = SymbolTable::new();
        let syms: Vec<Sym> = (0..500)
            .map(|i| t.intern(&["n:", &format!("m{i}")]))
            .collect();
        assert_eq!(t.len(), 500);
        for (i, &sym) in syms.iter().enumerate() {
            assert_eq!(sym, i as Sym);
            assert_eq!(t.lookup(&["n:", &format!("m{i}")]), Some(sym));
            assert_eq!(t.resolve(sym), format!("n:m{i}"));
        }
    }

    #[test]
    fn wire_round_trip_preserves_ids_and_rejects_duplicates() {
        let mut t = SymbolTable::new();
        t.intern(&["i:", "Lb;.f:()V"]);
        t.intern(&["s:", ""]);
        t.intern(&["s:", "x\u{e9}"]);
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(SymbolTable::validate_wire(&bytes), Ok(3));
        let back = SymbolTable::read_wire(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(back.len(), t.len());
        for (sym, s) in t.iter() {
            assert_eq!(back.resolve(sym), s);
            assert_eq!(back.lookup(&[s]), Some(sym));
        }
        // Duplicate strings are rejected by both the validator and the
        // decoder.
        let mut w = WireWriter::new();
        w.put_len(2);
        w.put_str("dup");
        w.put_str("dup");
        let bad = w.into_bytes();
        assert!(SymbolTable::validate_wire(&bad).is_err());
        assert!(SymbolTable::read_wire(&mut WireReader::new(&bad)).is_err());
    }

    #[test]
    fn validator_rejects_truncation_and_trailing_bytes() {
        let mut t = SymbolTable::new();
        t.intern(&["n:", "go"]);
        let mut w = WireWriter::new();
        t.write_wire(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(SymbolTable::validate_wire(&bytes[..cut]).is_err());
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SymbolTable::validate_wire(&trailing).is_err());
    }
}
