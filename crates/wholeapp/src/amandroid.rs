//! The Amandroid-style whole-app baseline tool.
//!
//! Faithful to the comparator's behaviour as the paper characterizes it:
//! a precise whole-app graph built together with dataflow analysis,
//! parameter configuration (`config.ini`-like [`AmandroidConfig`]), a
//! skipped-library list (`liblist.txt`), hard-coded async/callback edges
//! that miss `Executor.execute`/`AsyncTask`/`onClick` flows, sloppy entry
//! synthesis that accepts unregistered components (the §VI-C FP source),
//! a work-unit timeout (the paper's 300-minute budget, scaled), and
//! deterministic "occasional errors" (§VI-C: "Could not find procedure",
//! "key not found").

use crate::callgraph::{build, CgAlgorithm, CgOptions};
use crate::dataflow::{self, AbstractVal};
use backdroid_core::detect::Verdict;
use backdroid_core::detector::DetectorRegistry;
use backdroid_core::forward::DataflowValue;
use backdroid_ir::{MethodSig, Program};
use backdroid_manifest::{AsyncFlowTable, Manifest};
use std::time::{Duration, Instant};

/// Amandroid's default skipped-library prefixes (a representative slice of
/// the 139-entry `liblist.txt`; the §VI-C misses involved Amazon, Tencent,
/// and Facebook packages).
pub const DEFAULT_LIBLIST: &[&str] = &[
    "com.facebook.",
    "com.amazon.identity.",
    "com.tencent.",
    "com.qihoopay.",
    "com.skt.arm.",
];

/// The scaled timeout: the paper gives Amandroid 300 minutes per app; one
/// "paper minute" is [`WORK_UNITS_PER_MINUTE`] work units here.
pub const WORK_UNITS_PER_MINUTE: f64 = 1_000.0;

/// Default budget: 300 scaled minutes.
pub const DEFAULT_BUDGET_UNITS: u64 = (300.0 * WORK_UNITS_PER_MINUTE) as u64;

/// Converts work units to scaled "paper minutes" for reporting.
pub fn paper_minutes(units: u64) -> f64 {
    units as f64 / WORK_UNITS_PER_MINUTE
}

/// Baseline configuration (the `config.ini` analogue).
#[derive(Clone, Debug)]
pub struct AmandroidConfig {
    /// Work-unit budget (timeout).
    pub budget_units: u64,
    /// Skipped-library prefixes.
    pub liblist: Vec<String>,
    /// Use the extended async table (models a hypothetical robust tool;
    /// default `false` reproduces the paper's missed implicit flows).
    pub robust_async: bool,
    /// Only registered components count as entries when `true` (default
    /// `false` reproduces the §VI-C false positives).
    pub manifest_strict: bool,
    /// Enable the deterministic occasional-error injection.
    pub error_injection: bool,
    /// Global dataflow fixpoint pass cap.
    pub max_passes: usize,
}

impl Default for AmandroidConfig {
    fn default() -> Self {
        AmandroidConfig {
            budget_units: DEFAULT_BUDGET_UNITS,
            liblist: DEFAULT_LIBLIST.iter().map(|s| s.to_string()).collect(),
            robust_async: false,
            manifest_strict: false,
            error_injection: true,
            max_passes: 8,
        }
    }
}

/// One baseline finding.
#[derive(Clone, Debug)]
pub struct AmandroidFinding {
    /// Sink id.
    pub sink_id: String,
    /// Containing method.
    pub method: MethodSig,
    /// Statement index of the sink call.
    pub stmt_idx: usize,
    /// The recovered parameter value (converted to the shared
    /// representation for judging).
    pub param: DataflowValue,
    /// The detector verdict.
    pub verdict: Verdict,
}

/// A completed baseline run.
#[derive(Clone, Debug)]
pub struct AmandroidReport {
    /// All sink findings.
    pub findings: Vec<AmandroidFinding>,
    /// Work units consumed.
    pub work_units: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl AmandroidReport {
    /// Findings flagged vulnerable.
    pub fn vulnerable(&self) -> Vec<&AmandroidFinding> {
        self.findings
            .iter()
            .filter(|f| f.verdict.is_vulnerable())
            .collect()
    }
}

/// The outcome of one app analysis.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Finished within budget.
    Done(AmandroidReport),
    /// Budget exhausted (the paper's 35% population).
    TimedOut {
        /// Work units at cutoff.
        work_units: u64,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
    /// Whole-app analysis error (the §VI-C "occasional errors").
    Error {
        /// The error message.
        message: String,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
}

impl Outcome {
    /// Whether the analysis produced findings.
    pub fn is_done(&self) -> bool {
        matches!(self, Outcome::Done(_))
    }

    /// The report, if done.
    pub fn report(&self) -> Option<&AmandroidReport> {
        match self {
            Outcome::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Work units consumed (budget cap for timeouts).
    pub fn work_units(&self) -> u64 {
        match self {
            Outcome::Done(r) => r.work_units,
            Outcome::TimedOut { work_units, .. } => *work_units,
            Outcome::Error { .. } => 0,
        }
    }
}

/// FNV-1a — the occasional-error injection hash (an app errors iff
/// `fnv1a(name) % 1000 == 0`, modeling real Amandroid's input-dependent
/// flakiness deterministically).
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Error-injection modulus.
pub const ERROR_MODULUS: u64 = 1000;

/// Runs the whole-app baseline on one app, vetting the given detectors'
/// sinks and judging through their rules.
pub fn analyze(
    app_name: &str,
    program: &Program,
    manifest: &Manifest,
    detectors: &DetectorRegistry,
    cfg: &AmandroidConfig,
) -> Outcome {
    let start = Instant::now();
    if cfg.error_injection && fnv1a(app_name).is_multiple_of(ERROR_MODULUS) {
        return Outcome::Error {
            message: "Could not find procedure (key not found)".into(),
            elapsed: start.elapsed(),
        };
    }

    let cg_opts = CgOptions {
        algorithm: CgAlgorithm::Spark,
        async_table: if cfg.robust_async {
            AsyncFlowTable::robust()
        } else {
            AsyncFlowTable::baseline()
        },
        manifest_strict: cfg.manifest_strict,
        skip_packages: cfg.liblist.clone(),
        budget_units: Some(cfg.budget_units),
    };
    let cg = match build(program, manifest, &cg_opts) {
        Ok(cg) => cg,
        Err(t) => {
            return Outcome::TimedOut {
                work_units: t.work_units,
                elapsed: start.elapsed(),
            }
        }
    };

    let sinks = detectors.sink_registry();
    let df = match dataflow::run(
        program,
        &cg,
        &sinks,
        cfg.max_passes,
        Some(cfg.budget_units),
        cg.work_units,
    ) {
        Ok(df) => df,
        Err(t) => {
            return Outcome::TimedOut {
                work_units: t.work_units,
                elapsed: start.elapsed(),
            }
        }
    };

    let findings = df
        .sinks
        .iter()
        .map(|obs| {
            let param = obs
                .params
                .first()
                .map(to_dataflow_value)
                .unwrap_or(DataflowValue::Unknown);
            let verdict = detectors
                .judge(&obs.sink_id, std::slice::from_ref(&param))
                .expect("observed sink spec belongs to the detector registry");
            AmandroidFinding {
                sink_id: obs.sink_id.to_string(),
                method: obs.method.clone(),
                stmt_idx: obs.stmt_idx,
                param,
                verdict,
            }
        })
        .collect();

    Outcome::Done(AmandroidReport {
        findings,
        work_units: df.work_units,
        elapsed: start.elapsed(),
    })
}

/// Converts the baseline's abstract value into the shared judging
/// representation.
fn to_dataflow_value(v: &AbstractVal) -> DataflowValue {
    match v {
        AbstractVal::Str(s) => DataflowValue::Str(s.clone()),
        AbstractVal::Int(i) => DataflowValue::Int(*i),
        AbstractVal::PlatformField(f) => DataflowValue::PlatformConst(f.clone()),
        AbstractVal::Obj(c) => DataflowValue::Obj {
            class: c.clone(),
            site: 0,
        },
        AbstractVal::Top => DataflowValue::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};

    fn cfg_no_error() -> AmandroidConfig {
        AmandroidConfig {
            error_injection: false,
            ..AmandroidConfig::default()
        }
    }

    #[test]
    fn detects_direct_ecb() {
        let app = AppSpec::named("com.t.direct")
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(4, 3, 4)
            .generate();
        let out = analyze(
            &app.name,
            &app.program,
            &app.manifest,
            &DetectorRegistry::paper(),
            &cfg_no_error(),
        );
        let report = out.report().expect("done");
        assert_eq!(report.vulnerable().len(), 1, "{:?}", report.findings);
    }

    #[test]
    fn misses_async_flows_unless_robust() {
        let app = AppSpec::named("com.t.async")
            .with_scenario(Scenario::new(
                Mechanism::InterfaceRunnable,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(4, 3, 4)
            .generate();
        let reg = DetectorRegistry::paper();
        let out = analyze(
            &app.name,
            &app.program,
            &app.manifest,
            &reg,
            &cfg_no_error(),
        );
        assert_eq!(
            out.report().unwrap().vulnerable().len(),
            0,
            "baseline misses Executor.execute flows"
        );
        let robust = AmandroidConfig {
            robust_async: true,
            ..cfg_no_error()
        };
        let out = analyze(&app.name, &app.program, &app.manifest, &reg, &robust);
        assert_eq!(
            out.report().unwrap().vulnerable().len(),
            1,
            "robust table restores the flow"
        );
    }

    #[test]
    fn skips_liblist_packages() {
        let app = AppSpec::named("com.t.skiplib")
            .with_scenario(Scenario::new(
                Mechanism::SkippedLibrary,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(4, 3, 4)
            .generate();
        let reg = DetectorRegistry::paper();
        let out = analyze(
            &app.name,
            &app.program,
            &app.manifest,
            &reg,
            &cfg_no_error(),
        );
        assert_eq!(out.report().unwrap().vulnerable().len(), 0);
        // Without the liblist, the finding appears.
        let no_skip = AmandroidConfig {
            liblist: Vec::new(),
            ..cfg_no_error()
        };
        let out = analyze(&app.name, &app.program, &app.manifest, &reg, &no_skip);
        assert_eq!(out.report().unwrap().vulnerable().len(), 1);
    }

    #[test]
    fn flags_unregistered_component_as_fp() {
        let app = AppSpec::named("com.t.fp")
            .with_scenario(Scenario::new(
                Mechanism::UnregisteredComponent,
                SinkKind::SslVerifier,
                true,
            ))
            .with_filler(4, 3, 4)
            .generate();
        assert_eq!(app.true_vulnerabilities(), 0, "ground truth: not reachable");
        let reg = DetectorRegistry::paper();
        let out = analyze(
            &app.name,
            &app.program,
            &app.manifest,
            &reg,
            &cfg_no_error(),
        );
        assert_eq!(
            out.report().unwrap().vulnerable().len(),
            1,
            "sloppy entries produce the paper's FP"
        );
        // Strict manifest mode removes the FP.
        let strict = AmandroidConfig {
            manifest_strict: true,
            ..cfg_no_error()
        };
        let out = analyze(&app.name, &app.program, &app.manifest, &reg, &strict);
        assert_eq!(out.report().unwrap().vulnerable().len(), 0);
    }

    #[test]
    fn finds_subclassed_sink_backdroid_misses() {
        let app = AppSpec::named("com.t.subclassed")
            .with_scenario(Scenario::new(
                Mechanism::IndirectSubclassedSink,
                SinkKind::SslVerifier,
                true,
            ))
            .with_filler(4, 3, 4)
            .generate();
        let reg = DetectorRegistry::paper();
        let out = analyze(
            &app.name,
            &app.program,
            &app.manifest,
            &reg,
            &cfg_no_error(),
        );
        assert_eq!(out.report().unwrap().vulnerable().len(), 1);
    }

    #[test]
    fn small_budget_times_out() {
        let app = AppSpec::named("com.t.big")
            .with_scenario(Scenario::new(
                Mechanism::DirectEntry,
                SinkKind::Cipher,
                true,
            ))
            .with_filler(60, 6, 8)
            .generate();
        let cfg = AmandroidConfig {
            budget_units: 50,
            ..cfg_no_error()
        };
        let out = analyze(
            &app.name,
            &app.program,
            &app.manifest,
            &DetectorRegistry::paper(),
            &cfg,
        );
        assert!(matches!(out, Outcome::TimedOut { .. }));
    }

    #[test]
    fn error_injection_is_deterministic() {
        // Find a name that triggers and one that does not.
        let mut trigger = None;
        let mut clean = None;
        for i in 0..100_000 {
            let name = format!("com.t.err{i}");
            if fnv1a(&name).is_multiple_of(ERROR_MODULUS) {
                trigger.get_or_insert(name);
            } else {
                clean.get_or_insert(name);
            }
            if trigger.is_some() && clean.is_some() {
                break;
            }
        }
        let app = AppSpec::named("x").with_filler(2, 2, 2).generate();
        let cfg = AmandroidConfig::default();
        let reg = DetectorRegistry::paper();
        let out = analyze(&trigger.unwrap(), &app.program, &app.manifest, &reg, &cfg);
        assert!(matches!(out, Outcome::Error { .. }));
        let out = analyze(&clean.unwrap(), &app.program, &app.manifest, &reg, &cfg);
        assert!(out.is_done());
    }

    #[test]
    fn paper_minutes_mapping() {
        assert!((paper_minutes(DEFAULT_BUDGET_UNITS) - 300.0).abs() < 1e-9);
        assert!((paper_minutes(1_000) - 1.0).abs() < 1e-9);
    }
}
