//! FlowDroid-style decoupled call-graph generation (the Fig 1 baseline).
//!
//! FlowDroid, unlike Amandroid, separates call-graph construction from
//! taint analysis; the paper exploits this to measure the cost of the
//! whole-app graph alone (§II-C), using the context-sensitive `geomPTA`
//! algorithm without IccTA transformation.

use crate::callgraph::{build, CallGraph, CgAlgorithm, CgOptions};
use backdroid_ir::Program;
use backdroid_manifest::{AsyncFlowTable, Manifest};
use std::time::{Duration, Instant};

/// Statistics of one call-graph generation run.
#[derive(Clone, Debug)]
pub struct CgRunStats {
    /// Reachable methods.
    pub nodes: usize,
    /// Call edges.
    pub edges: usize,
    /// Work units consumed.
    pub work_units: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// The outcome of one generation run.
#[derive(Clone, Debug)]
pub enum CgOutcome {
    /// Finished within budget.
    Done(CgRunStats),
    /// Budget exhausted (24% of the paper's 144 apps hit the 5-hour cap).
    TimedOut {
        /// Work units at cutoff.
        work_units: u64,
        /// Wall-clock time spent.
        elapsed: Duration,
    },
}

impl CgOutcome {
    /// Whether generation finished.
    pub fn is_done(&self) -> bool {
        matches!(self, CgOutcome::Done(_))
    }

    /// Work units consumed.
    pub fn work_units(&self) -> u64 {
        match self {
            CgOutcome::Done(s) => s.work_units,
            CgOutcome::TimedOut { work_units, .. } => *work_units,
        }
    }
}

/// Generates the whole-app call graph with the Fig 1 configuration:
/// context-sensitive geomPTA, no IccTA, no liblist.
pub fn generate_callgraph(
    program: &Program,
    manifest: &Manifest,
    budget_units: Option<u64>,
) -> CgOutcome {
    let start = Instant::now();
    let opts = CgOptions {
        algorithm: CgAlgorithm::GeomPta,
        async_table: AsyncFlowTable::baseline(),
        manifest_strict: false,
        skip_packages: Vec::new(),
        budget_units,
    };
    match build(program, manifest, &opts) {
        Ok(cg) => CgOutcome::Done(stats_of(&cg, start.elapsed())),
        Err(t) => CgOutcome::TimedOut {
            work_units: t.work_units,
            elapsed: start.elapsed(),
        },
    }
}

fn stats_of(cg: &CallGraph, elapsed: Duration) -> CgRunStats {
    CgRunStats {
        nodes: cg.node_count(),
        edges: cg.edge_count(),
        work_units: cg.work_units,
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_appgen::AppSpec;

    #[test]
    fn generates_graph_for_small_app() {
        let app = AppSpec::named("com.t.cg").with_filler(10, 4, 6).generate();
        let out = generate_callgraph(&app.program, &app.manifest, None);
        let CgOutcome::Done(stats) = out else {
            panic!("expected done");
        };
        assert!(stats.nodes > 20);
        assert!(stats.edges > 10);
        assert!(stats.work_units > 0);
    }

    #[test]
    fn times_out_under_tiny_budget() {
        let app = AppSpec::named("com.t.cg2").with_filler(20, 5, 6).generate();
        let out = generate_callgraph(&app.program, &app.manifest, Some(10));
        assert!(!out.is_done());
        assert!(out.work_units() > 10);
    }

    #[test]
    fn cost_grows_with_app_size() {
        let small = AppSpec::named("s").with_filler(5, 3, 4).generate();
        let large = AppSpec::named("l").with_filler(60, 6, 8).generate();
        let a = generate_callgraph(&small.program, &small.manifest, None).work_units();
        let b = generate_callgraph(&large.program, &large.manifest, None).work_units();
        assert!(b > a * 3, "whole-app cost must scale with size: {a} vs {b}");
    }
}
