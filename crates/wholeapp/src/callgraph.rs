//! Whole-app call-graph construction — the substrate every pre-BackDroid
//! tool builds first (paper §II-A).
//!
//! Three algorithms of increasing precision/cost are provided, mirroring
//! the paper's comparisons: plain CHA, a SPARK-like flow-insensitive
//! points-to refinement (RTA over instantiated classes), and a
//! `geomPTA`-like context-sensitive variant (the Fig 1 configuration) that
//! re-processes methods per incoming call edge.

use backdroid_ir::{ClassName, InvokeKind, MethodSig, Program, Rvalue, Stmt};
use backdroid_manifest::{AsyncFlowTable, ComponentKind, Manifest};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The call-graph construction algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CgAlgorithm {
    /// Class-hierarchy analysis: every override is a target.
    Cha,
    /// SPARK-like: dispatch restricted to instantiated classes.
    Spark,
    /// geomPTA-like: SPARK plus per-call-edge context re-processing
    /// (costlier, the Fig 1 configuration).
    GeomPta,
}

/// Why construction stopped early.
#[derive(Clone, Debug, PartialEq)]
pub struct TimedOut {
    /// Work units consumed when the budget ran out.
    pub work_units: u64,
}

/// Construction options.
#[derive(Clone, Debug)]
pub struct CgOptions {
    /// The algorithm.
    pub algorithm: CgAlgorithm,
    /// Async/callback domain-knowledge table (the baseline's hard-coded
    /// edges — see `backdroid_manifest::AsyncFlowTable`).
    pub async_table: AsyncFlowTable,
    /// When `false` (the Amandroid-like default), lifecycle methods of
    /// *any* class extending a component base count as entries, even if
    /// the component is not registered — the §VI-C false-positive source.
    pub manifest_strict: bool,
    /// Package prefixes to skip entirely (Amandroid's `liblist.txt`).
    pub skip_packages: Vec<String>,
    /// Work-unit budget; `None` = unbounded.
    pub budget_units: Option<u64>,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            algorithm: CgAlgorithm::Spark,
            async_table: AsyncFlowTable::baseline(),
            manifest_strict: false,
            skip_packages: Vec::new(),
            budget_units: None,
        }
    }
}

/// The constructed whole-app call graph.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Reachable methods.
    pub reached: BTreeSet<MethodSig>,
    /// Call edges (caller → callees).
    pub edges: BTreeMap<MethodSig, BTreeSet<MethodSig>>,
    /// Reverse edges (callee → callers).
    pub callers: BTreeMap<MethodSig, BTreeSet<MethodSig>>,
    /// Classes observed as instantiated.
    pub instantiated: BTreeSet<ClassName>,
    /// Entry methods used.
    pub entries: Vec<MethodSig>,
    /// Work units consumed.
    pub work_units: u64,
}

impl CallGraph {
    /// Number of reachable methods.
    pub fn node_count(&self) -> usize {
        self.reached.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Callers of `m`, if any.
    pub fn callers_of(&self, m: &MethodSig) -> Vec<&MethodSig> {
        self.callers
            .get(m)
            .map(|s| s.iter().collect())
            .unwrap_or_default()
    }
}

/// Enumerates the entry methods, modeling the lifecycle-aware entry
/// synthesis of FlowDroid/Amandroid.
pub fn entry_methods(program: &Program, manifest: &Manifest, strict: bool) -> Vec<MethodSig> {
    let mut entries: Vec<MethodSig> = manifest
        .entry_methods()
        .into_iter()
        .filter(|m| program.method(m).is_some())
        .collect();
    if !strict {
        // Sloppy mode: any class extending a component base contributes
        // its lifecycle handlers, registered or not (the §VI-C FP shape).
        for class in program.classes() {
            let chain = program.superclass_chain(class.name());
            for kind in [
                ComponentKind::Activity,
                ComponentKind::Service,
                ComponentKind::Receiver,
                ComponentKind::Provider,
            ] {
                if chain.contains(&kind.base_class()) {
                    for h in kind.lifecycle_handlers() {
                        let sig = MethodSig::new(
                            class.name().clone(),
                            *h,
                            vec![],
                            backdroid_ir::Type::Void,
                        );
                        if program.method(&sig).is_some() && !entries.contains(&sig) {
                            entries.push(sig);
                        }
                    }
                }
            }
        }
    }
    entries
}

fn skipped(class: &ClassName, skip: &[String]) -> bool {
    skip.iter().any(|p| class.as_str().starts_with(p.as_str()))
}

/// Builds the whole-app call graph.
pub fn build(
    program: &Program,
    manifest: &Manifest,
    opts: &CgOptions,
) -> Result<CallGraph, TimedOut> {
    let mut cg = CallGraph {
        entries: entry_methods(program, manifest, opts.manifest_strict),
        ..CallGraph::default()
    };

    // Fixpoint: RTA needs to re-dispatch when new classes are
    // instantiated; geomPTA re-processes per incoming edge.
    let mut queue: VecDeque<MethodSig> = cg.entries.iter().cloned().collect();
    let mut processed_rounds: BTreeMap<MethodSig, u32> = BTreeMap::new();
    let mut pending_virtuals: Vec<(MethodSig, MethodSig)> = Vec::new(); // (caller, declared)

    while let Some(m) = queue.pop_front() {
        if skipped(m.class(), &opts.skip_packages) {
            continue;
        }
        let rounds = processed_rounds.entry(m.clone()).or_insert(0);
        let max_rounds = match opts.algorithm {
            CgAlgorithm::Cha | CgAlgorithm::Spark => 1,
            // Context-sensitive: re-process per incoming edge, bounded.
            CgAlgorithm::GeomPta => 4,
        };
        if *rounds >= max_rounds && cg.reached.contains(&m) {
            continue;
        }
        *rounds += 1;
        cg.reached.insert(m.clone());
        let Some(body) = program.method(&m).and_then(|x| x.body()) else {
            continue;
        };
        for stmt in body.stmts() {
            cg.work_units += 1;
            if let Some(budget) = opts.budget_units {
                if cg.work_units > budget {
                    return Err(TimedOut {
                        work_units: cg.work_units,
                    });
                }
            }
            // Track instantiations for RTA dispatch.
            if let Stmt::Assign {
                rvalue: Rvalue::New(c),
                ..
            } = stmt
            {
                if cg.instantiated.insert(c.clone()) {
                    // New type: previously unresolved virtual sites may
                    // gain targets — re-queue their callers.
                    for (caller, _) in &pending_virtuals {
                        queue.push_back(caller.clone());
                    }
                }
            }
            let Some(ie) = stmt.invoke_expr() else {
                continue;
            };
            let mut targets: Vec<MethodSig> = Vec::new();
            match ie.kind {
                InvokeKind::Static | InvokeKind::Special | InvokeKind::Super => {
                    if program.method(&ie.callee).is_some() {
                        targets.push(ie.callee.clone());
                    } else if program.defines(ie.callee.class()) {
                        if let Some(r) = program.resolve_dispatch(ie.callee.class(), &ie.callee) {
                            targets.push(r);
                        }
                    }
                }
                InvokeKind::Virtual | InvokeKind::Interface => {
                    let cha = program.cha_targets(&ie.callee);
                    match opts.algorithm {
                        CgAlgorithm::Cha => targets = cha,
                        CgAlgorithm::Spark | CgAlgorithm::GeomPta => {
                            // RTA refinement: only instantiated receivers.
                            for t in cha {
                                let cls = t.class();
                                let feasible = cg
                                    .instantiated
                                    .iter()
                                    .any(|ic| ic == cls || program.is_subtype_of(ic, cls))
                                    || !program.defines(cls);
                                if feasible {
                                    targets.push(t);
                                }
                            }
                            pending_virtuals.push((m.clone(), ie.callee.clone()));
                        }
                    }
                }
            }
            // Hard-coded async/callback edges from the domain table — the
            // baseline's only way across implicit flows.
            if opts.async_table.is_registration_api(ie.callee.name()) {
                for (iface, cb) in opts.async_table.callbacks_of(ie.callee.name()) {
                    for class in program.classes() {
                        let implements = program.implements(class.name(), &iface)
                            || program.superclass_chain(class.name()).contains(&iface);
                        if !implements {
                            continue;
                        }
                        if !cg.instantiated.contains(class.name())
                            && opts.algorithm != CgAlgorithm::Cha
                        {
                            continue;
                        }
                        let cb_sig = class
                            .methods()
                            .iter()
                            .find(|mm| mm.sig().name() == cb)
                            .map(|mm| mm.sig().clone());
                        if let Some(cb_sig) = cb_sig {
                            targets.push(cb_sig);
                        }
                    }
                }
            }
            for t in targets {
                if skipped(t.class(), &opts.skip_packages) {
                    continue;
                }
                cg.edges.entry(m.clone()).or_default().insert(t.clone());
                cg.callers.entry(t.clone()).or_default().insert(m.clone());
                if !cg.reached.contains(&t) {
                    queue.push_back(t);
                } else if opts.algorithm == CgAlgorithm::GeomPta {
                    // Context-sensitive re-processing of the callee.
                    queue.push_back(t);
                }
            }
        }
    }
    // Context-sensitive re-analysis: geomPTA re-processes each method once
    // per calling context (bounded), which is where its extra cost — and
    // the Fig 1 timeouts — come from.
    if opts.algorithm == CgAlgorithm::GeomPta {
        let reached: Vec<MethodSig> = cg.reached.iter().cloned().collect();
        for m in reached {
            let contexts = cg.callers.get(&m).map_or(0, |c| c.len()).clamp(1, 3);
            let Some(body) = program.method(&m).and_then(|x| x.body()) else {
                continue;
            };
            for _ctx in 0..contexts {
                for stmt in body.stmts() {
                    cg.work_units += 1;
                    if let Some(budget) = opts.budget_units {
                        if cg.work_units > budget {
                            return Err(TimedOut {
                                work_units: cg.work_units,
                            });
                        }
                    }
                    // Re-resolve dispatch in this context (the precision
                    // work context sensitivity actually performs).
                    if let Some(ie) = stmt.invoke_expr() {
                        let _ = program.cha_targets(&ie.callee);
                    }
                }
            }
        }
    }
    Ok(cg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Type, Value};
    use backdroid_manifest::Component;

    fn sample() -> (Program, Manifest) {
        let mut p = Program::new();
        let act = ClassName::new("com.a.Main");
        let helper = ClassName::new("com.a.Helper");
        let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let h = on_create.new_object(helper.as_str(), vec![], vec![]);
        on_create.invoke(InvokeExpr::call_virtual(
            MethodSig::new(helper.as_str(), "work", vec![], Type::Void),
            h,
            vec![],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        let mut ctor = MethodBuilder::constructor(&helper, vec![]);
        ctor.ret_void();
        let mut work = MethodBuilder::public(&helper, "work", vec![], Type::Void);
        work.invoke(InvokeExpr::call_static(
            MethodSig::new("com.a.Util", "log", vec![Type::Int], Type::Void),
            vec![Value::int(1)],
        ));
        p.add_class(
            ClassBuilder::new(helper.as_str())
                .method(ctor.build())
                .method(work.build())
                .build(),
        );
        let util = ClassName::new("com.a.Util");
        let mut log = MethodBuilder::public_static(&util, "log", vec![Type::Int], Type::Void);
        log.ret_void();
        p.add_class(ClassBuilder::new(util.as_str()).method(log.build()).build());

        let mut m = Manifest::new("com.a");
        m.register(Component::new(ComponentKind::Activity, "com.a.Main"));
        (p, m)
    }

    #[test]
    fn reaches_transitive_callees() {
        let (p, m) = sample();
        let cg = build(&p, &m, &CgOptions::default()).unwrap();
        assert!(cg
            .reached
            .iter()
            .any(|s| s.to_string() == "<com.a.Util: void log(int)>"));
        assert!(cg.node_count() >= 4); // onCreate, <init>, work, log
        assert!(cg.edge_count() >= 3);
        assert!(cg.work_units > 0);
    }

    #[test]
    fn budget_times_out() {
        let (p, m) = sample();
        let opts = CgOptions {
            budget_units: Some(2),
            ..CgOptions::default()
        };
        let r = build(&p, &m, &opts);
        assert!(matches!(r, Err(TimedOut { work_units }) if work_units > 2));
    }

    #[test]
    fn sloppy_entries_include_unregistered_components() {
        let (mut p, m) = sample();
        let hidden = ClassName::new("com.a.Hidden");
        let mut oc = MethodBuilder::public(&hidden, "onCreate", vec![], Type::Void);
        oc.ret_void();
        p.add_class(
            ClassBuilder::new(hidden.as_str())
                .extends("android.app.Activity")
                .method(oc.build())
                .build(),
        );
        let sloppy = entry_methods(&p, &m, false);
        assert!(sloppy.iter().any(|e| e.class().as_str() == "com.a.Hidden"));
        let strict = entry_methods(&p, &m, true);
        assert!(!strict.iter().any(|e| e.class().as_str() == "com.a.Hidden"));
    }

    #[test]
    fn skip_packages_prune_the_graph() {
        let (p, m) = sample();
        let opts = CgOptions {
            skip_packages: vec!["com.a.Util".into()],
            ..CgOptions::default()
        };
        let cg = build(&p, &m, &opts).unwrap();
        assert!(!cg
            .reached
            .iter()
            .any(|s| s.class().as_str() == "com.a.Util"));
    }

    #[test]
    fn geompta_costs_more_than_spark() {
        let (p, m) = sample();
        let spark = build(&p, &m, &CgOptions::default()).unwrap();
        let geom = build(
            &p,
            &m,
            &CgOptions {
                algorithm: CgAlgorithm::GeomPta,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(geom.work_units > spark.work_units);
    }

    #[test]
    fn rta_excludes_never_instantiated_overrides() {
        let (mut p, m) = sample();
        // A Helper subclass overriding work() but never instantiated.
        let ghost = ClassName::new("com.a.GhostHelper");
        let mut w = MethodBuilder::public(&ghost, "work", vec![], Type::Void);
        w.ret_void();
        p.add_class(
            ClassBuilder::new(ghost.as_str())
                .extends("com.a.Helper")
                .method(w.build())
                .build(),
        );
        let spark = build(&p, &m, &CgOptions::default()).unwrap();
        assert!(!spark
            .reached
            .iter()
            .any(|s| s.class().as_str() == "com.a.GhostHelper"));
        let cha = build(
            &p,
            &m,
            &CgOptions {
                algorithm: CgAlgorithm::Cha,
                ..CgOptions::default()
            },
        )
        .unwrap();
        assert!(cha
            .reached
            .iter()
            .any(|s| s.class().as_str() == "com.a.GhostHelper"));
    }
}
