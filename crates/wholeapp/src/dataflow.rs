//! Whole-app flow-sensitive constant propagation over the call graph —
//! the expensive dataflow phase of the Amandroid-style baseline.
//!
//! Unlike BackDroid's targeted slices, this analysis visits *every*
//! reachable statement, stores per-statement fact maps (as flow-sensitive
//! engines do), and iterates method summaries to a global fixpoint. Its
//! cost therefore scales with app size — the property Fig 8 exposes.

use crate::callgraph::{CallGraph, TimedOut};
use backdroid_core::sinks::{SinkRegistry, SinkSpec};
use backdroid_ir::{
    Const, FieldSig, IdentityKind, InvokeExpr, LocalId, MethodSig, Place, Program, Rvalue, Stmt,
    Value,
};
use std::collections::HashMap;

/// Abstract constant lattice value.
#[derive(Clone, PartialEq, Debug)]
pub enum AbstractVal {
    /// A string constant.
    Str(String),
    /// An integral constant.
    Int(i64),
    /// A symbolic platform constant (static field of a platform class).
    PlatformField(FieldSig),
    /// An object of a known class.
    Obj(backdroid_ir::ClassName),
    /// Conflicting or unknown.
    Top,
}

/// Lattice join.
pub fn join(a: &AbstractVal, b: &AbstractVal) -> AbstractVal {
    if a == b {
        a.clone()
    } else {
        AbstractVal::Top
    }
}

/// One sink call observed during the whole-app pass.
#[derive(Clone, Debug)]
pub struct SinkObservation {
    /// The matched sink spec id.
    pub sink_id: String,
    /// Containing method.
    pub method: MethodSig,
    /// Statement index.
    pub stmt_idx: usize,
    /// Abstract values of the tracked parameters.
    pub params: Vec<AbstractVal>,
}

/// The dataflow result.
#[derive(Clone, Debug, Default)]
pub struct DataflowResult {
    /// All sink observations (last pass wins).
    pub sinks: Vec<SinkObservation>,
    /// Work units consumed.
    pub work_units: u64,
    /// Passes until fixpoint (or the cap).
    pub passes: usize,
}

/// Matches an invoke against the sink registry: exact platform signature,
/// or a call through an app subclass of the platform sink class that does
/// not override the method (the whole-app CHA view naturally covers the
/// subclassed-wrapper shape BackDroid's §VI-C FNs stem from).
pub fn match_sink<'r>(
    program: &Program,
    registry: &'r SinkRegistry,
    ie: &InvokeExpr,
) -> Option<&'r SinkSpec> {
    if let Some(spec) = registry.spec_for(&ie.callee) {
        return Some(spec);
    }
    for spec in registry.sinks() {
        if ie.callee.name() != spec.api.name() {
            continue;
        }
        if !program.defines(ie.callee.class()) {
            continue;
        }
        let inherits = program
            .superclass_chain(ie.callee.class())
            .contains(spec.api.class());
        let overridden = program
            .class(ie.callee.class())
            .is_some_and(|c| c.find_method_by_sub_signature(&spec.api).is_some());
        if inherits && !overridden {
            return Some(spec);
        }
    }
    None
}

/// Runs the whole-app constant propagation.
pub fn run(
    program: &Program,
    cg: &CallGraph,
    registry: &SinkRegistry,
    max_passes: usize,
    budget_units: Option<u64>,
    start_units: u64,
) -> Result<DataflowResult, TimedOut> {
    let mut result = DataflowResult {
        work_units: start_units,
        ..DataflowResult::default()
    };
    // Method summaries. Each pass recomputes the summaries from scratch
    // (joining only within the pass) and compares against the previous
    // pass — starting from "absent" rather than Top, so late-arriving
    // constants are not poisoned by first-pass unknowns.
    let mut param_facts: HashMap<MethodSig, Vec<AbstractVal>> = HashMap::new();
    let mut ret_facts: HashMap<MethodSig, AbstractVal> = HashMap::new();
    let mut statics: HashMap<FieldSig, AbstractVal> = HashMap::new();
    let mut fields: HashMap<FieldSig, AbstractVal> = HashMap::new();

    // `<clinit>` methods run implicitly: seed them as analyzed roots.
    let mut methods: Vec<MethodSig> = cg.reached.iter().cloned().collect();
    for class in program.classes() {
        if let Some(cl) = class.clinit() {
            if !methods.contains(cl.sig()) {
                methods.push(cl.sig().clone());
            }
        }
    }

    for pass in 0..max_passes {
        result.passes = pass + 1;
        let mut sink_obs: Vec<SinkObservation> = Vec::new();
        let mut param_next: HashMap<MethodSig, Vec<AbstractVal>> = HashMap::new();
        let mut ret_next: HashMap<MethodSig, AbstractVal> = HashMap::new();
        let mut statics_next: HashMap<FieldSig, AbstractVal> = HashMap::new();
        let mut fields_next: HashMap<FieldSig, AbstractVal> = HashMap::new();
        for m in &methods {
            let Some(body) = program.method(m).and_then(|x| x.body()) else {
                continue;
            };
            // Per-statement fact maps (flow-sensitive storage — the cost
            // driver of whole-app dataflow).
            let mut env: HashMap<LocalId, AbstractVal> = HashMap::new();
            let mut per_stmt_out: Vec<HashMap<LocalId, AbstractVal>> =
                Vec::with_capacity(body.len());
            for (idx, stmt) in body.stmts().iter().enumerate() {
                result.work_units += 1;
                if let Some(b) = budget_units {
                    if result.work_units > b {
                        return Err(TimedOut {
                            work_units: result.work_units,
                        });
                    }
                }
                match stmt {
                    Stmt::Identity { local, kind } => match kind {
                        IdentityKind::Param(i, _) => {
                            let v = param_facts
                                .get(m)
                                .and_then(|ps| ps.get(*i))
                                .cloned()
                                .unwrap_or(AbstractVal::Top);
                            env.insert(*local, v);
                        }
                        IdentityKind::This(c) => {
                            env.insert(*local, AbstractVal::Obj(c.clone()));
                        }
                        IdentityKind::CaughtException => {
                            env.insert(*local, AbstractVal::Top);
                        }
                    },
                    Stmt::Assign { place, rvalue } => {
                        let v = eval_rvalue(program, &env, &statics, &fields, &ret_facts, rvalue);
                        match place {
                            Place::Local(l) => {
                                env.insert(*l, v);
                            }
                            Place::StaticField(f) => {
                                let merged = match statics_next.get(f) {
                                    Some(o) => join(o, &v),
                                    None => v,
                                };
                                statics_next.insert(f.clone(), merged);
                            }
                            Place::InstanceField { field, .. } => {
                                let merged = match fields_next.get(field) {
                                    Some(o) => join(o, &v),
                                    None => v,
                                };
                                fields_next.insert(field.clone(), merged);
                            }
                            Place::ArrayElem { .. } => {}
                        }
                    }
                    Stmt::Return(Some(val)) => {
                        let v = eval_value(&env, val);
                        let merged = match ret_next.get(m) {
                            Some(o) => join(o, &v),
                            None => v,
                        };
                        ret_next.insert(m.clone(), merged);
                    }
                    _ => {}
                }
                // Call-site processing: propagate argument facts into
                // callee parameter summaries; observe sinks.
                if let Some(ie) = stmt.invoke_expr() {
                    if let Some(spec) = match_sink(program, registry, ie) {
                        let params = spec
                            .tracked_params
                            .iter()
                            .map(|&k| {
                                ie.args
                                    .get(k)
                                    .map(|a| eval_value(&env, a))
                                    .unwrap_or(AbstractVal::Top)
                            })
                            .collect();
                        sink_obs.push(SinkObservation {
                            sink_id: spec.id.clone(),
                            method: m.clone(),
                            stmt_idx: idx,
                            params,
                        });
                    }
                    if let Some(targets) = cg.edges.get(m) {
                        for t in targets {
                            if t.name() != ie.callee.name() {
                                continue;
                            }
                            let arg_facts: Vec<AbstractVal> = (0..t.params().len())
                                .map(|k| {
                                    ie.args
                                        .get(k)
                                        .map(|a| eval_value(&env, a))
                                        .unwrap_or(AbstractVal::Top)
                                })
                                .collect();
                            let entry = param_next
                                .entry(t.clone())
                                .or_insert_with(|| arg_facts.clone());
                            for (k, v) in arg_facts.iter().enumerate() {
                                if k < entry.len() {
                                    entry[k] = join(&entry[k], v);
                                }
                            }
                        }
                    }
                }
                per_stmt_out.push(env.clone());
            }
            let _ = per_stmt_out; // retained until method end, as real engines do
        }
        result.sinks = sink_obs;
        let stable = param_next == param_facts
            && ret_next == ret_facts
            && statics_next == statics
            && fields_next == fields;
        param_facts = param_next;
        ret_facts = ret_next;
        statics = statics_next;
        fields = fields_next;
        if stable {
            break;
        }
    }
    Ok(result)
}

fn eval_value(env: &HashMap<LocalId, AbstractVal>, v: &Value) -> AbstractVal {
    match v {
        Value::Const(Const::Str(s)) => AbstractVal::Str(s.clone()),
        Value::Const(Const::Int(i)) => AbstractVal::Int(*i),
        Value::Const(_) => AbstractVal::Top,
        Value::Local(l) => env.get(l).cloned().unwrap_or(AbstractVal::Top),
    }
}

fn eval_rvalue(
    program: &Program,
    env: &HashMap<LocalId, AbstractVal>,
    statics: &HashMap<FieldSig, AbstractVal>,
    fields: &HashMap<FieldSig, AbstractVal>,
    rets: &HashMap<MethodSig, AbstractVal>,
    rvalue: &Rvalue,
) -> AbstractVal {
    match rvalue {
        Rvalue::Use(v) | Rvalue::Cast(_, v) => eval_value(env, v),
        Rvalue::Read(Place::StaticField(f)) => {
            if let Some(v) = statics.get(f) {
                v.clone()
            } else if f.class().is_platform() && !program.defines(f.class()) {
                AbstractVal::PlatformField(f.clone())
            } else {
                AbstractVal::Top
            }
        }
        Rvalue::Read(Place::InstanceField { field, .. }) => {
            fields.get(field).cloned().unwrap_or(AbstractVal::Top)
        }
        Rvalue::Read(Place::Local(l)) => env.get(l).cloned().unwrap_or(AbstractVal::Top),
        Rvalue::Read(Place::ArrayElem { .. }) => AbstractVal::Top,
        Rvalue::New(c) => AbstractVal::Obj(c.clone()),
        Rvalue::Binop(op, a, b) => match (op, eval_value(env, a), eval_value(env, b)) {
            (backdroid_ir::BinOp::Add, AbstractVal::Int(x), AbstractVal::Int(y)) => {
                AbstractVal::Int(x.wrapping_add(y))
            }
            (backdroid_ir::BinOp::Add, AbstractVal::Str(x), AbstractVal::Str(y)) => {
                AbstractVal::Str(format!("{x}{y}"))
            }
            (backdroid_ir::BinOp::Xor, AbstractVal::Int(x), AbstractVal::Int(y)) => {
                AbstractVal::Int(x ^ y)
            }
            _ => AbstractVal::Top,
        },
        Rvalue::Invoke(ie) => rets.get(&ie.callee).cloned().unwrap_or(AbstractVal::Top),
        _ => AbstractVal::Top,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{build, CgOptions};
    use backdroid_core::DetectorRegistry;
    use backdroid_ir::{ClassBuilder, ClassName, MethodBuilder, Type};
    use backdroid_manifest::{Component, ComponentKind, Manifest};

    fn ecb_app() -> (Program, Manifest) {
        let mut p = Program::new();
        let act = ClassName::new("com.a.Main");
        let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let mode = on_create.assign_const(Const::str("AES/ECB/PKCS5Padding"));
        on_create.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![Value::Local(mode)],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        let mut m = Manifest::new("com.a");
        m.register(Component::new(ComponentKind::Activity, "com.a.Main"));
        (p, m)
    }

    #[test]
    fn observes_sink_with_constant_param() {
        let (p, m) = ecb_app();
        let cg = build(&p, &m, &CgOptions::default()).unwrap();
        let reg = DetectorRegistry::paper().sink_registry();
        let r = run(&p, &cg, &reg, 8, None, cg.work_units).unwrap();
        assert_eq!(r.sinks.len(), 1);
        assert_eq!(r.sinks[0].sink_id, "crypto.cipher");
        assert_eq!(
            r.sinks[0].params[0],
            AbstractVal::Str("AES/ECB/PKCS5Padding".into())
        );
        assert!(r.work_units > cg.work_units);
    }

    #[test]
    fn join_rules() {
        let a = AbstractVal::Str("x".into());
        assert_eq!(join(&a, &a), a);
        assert_eq!(join(&a, &AbstractVal::Int(1)), AbstractVal::Top);
    }

    #[test]
    fn budget_times_out_dataflow() {
        let (p, m) = ecb_app();
        let cg = build(&p, &m, &CgOptions::default()).unwrap();
        let reg = DetectorRegistry::paper().sink_registry();
        let r = run(&p, &cg, &reg, 8, Some(cg.work_units + 1), cg.work_units);
        assert!(r.is_err());
    }

    #[test]
    fn clinit_statics_are_seeded() {
        // MODE set only in <clinit>; the whole-app pass must still see it.
        let mut p = Program::new();
        let cfg = ClassName::new("com.a.Config");
        let field = FieldSig::new(cfg.clone(), "MODE", Type::string());
        let mut clinit = MethodBuilder::clinit(&cfg);
        let v = clinit.assign_const(Const::str("AES/ECB/PKCS5Padding"));
        clinit.write_static_field(field.clone(), Value::Local(v));
        p.add_class(
            ClassBuilder::new(cfg.as_str())
                .field(
                    "MODE",
                    Type::string(),
                    backdroid_ir::Modifiers::public_static(),
                )
                .method(clinit.build())
                .build(),
        );
        let act = ClassName::new("com.a.Main");
        let mut on_create = MethodBuilder::public(&act, "onCreate", vec![], Type::Void);
        let mode = on_create.read_static_field(field);
        on_create.invoke(InvokeExpr::call_static(
            MethodSig::new(
                "javax.crypto.Cipher",
                "getInstance",
                vec![Type::string()],
                Type::object("javax.crypto.Cipher"),
            ),
            vec![Value::Local(mode)],
        ));
        p.add_class(
            ClassBuilder::new(act.as_str())
                .extends("android.app.Activity")
                .method(on_create.build())
                .build(),
        );
        let mut m = Manifest::new("com.a");
        m.register(Component::new(ComponentKind::Activity, "com.a.Main"));
        let cg = build(&p, &m, &CgOptions::default()).unwrap();
        let reg = DetectorRegistry::paper().sink_registry();
        let r = run(&p, &cg, &reg, 8, None, 0).unwrap();
        assert_eq!(
            r.sinks[0].params[0],
            AbstractVal::Str("AES/ECB/PKCS5Padding".into())
        );
    }
}
