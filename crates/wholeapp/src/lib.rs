//! # backdroid-wholeapp
//!
//! The whole-app comparators the paper evaluates BackDroid against, built
//! from scratch:
//!
//! * [`callgraph`] — entry-point-driven whole-app call graphs (CHA,
//!   SPARK-like RTA, and a geomPTA-like context-sensitive variant).
//! * [`flowdroid`] — decoupled call-graph generation (the Fig 1 baseline).
//! * [`amandroid`] — whole-app dataflow with the comparator's documented
//!   behaviours: `liblist.txt` skipping, hard-coded (incomplete)
//!   async/callback edges, sloppy entry synthesis, a scaled 300-minute
//!   timeout, and deterministic occasional errors (§VI-C).
//!
//! ```
//! use backdroid_wholeapp::amandroid::{analyze, AmandroidConfig};
//! use backdroid_core::DetectorRegistry;
//! use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
//!
//! let app = AppSpec::named("com.example.demo")
//!     .with_scenario(Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, true))
//!     .with_filler(4, 3, 4)
//!     .generate();
//! let cfg = AmandroidConfig { error_injection: false, ..AmandroidConfig::default() };
//! let out = analyze(&app.name, &app.program, &app.manifest,
//!                   &DetectorRegistry::paper(), &cfg);
//! assert_eq!(out.report().unwrap().vulnerable().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amandroid;
pub mod callgraph;
pub mod dataflow;
pub mod flowdroid;

pub use amandroid::{
    analyze, paper_minutes, AmandroidConfig, AmandroidFinding, AmandroidReport, Outcome,
    DEFAULT_BUDGET_UNITS, DEFAULT_LIBLIST, WORK_UNITS_PER_MINUTE,
};
pub use callgraph::{build, entry_methods, CallGraph, CgAlgorithm, CgOptions, TimedOut};
pub use flowdroid::{generate_callgraph, CgOutcome, CgRunStats};
