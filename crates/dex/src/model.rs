//! The synthetic DEX container: constant pools, class definitions, and the
//! encoder from [`backdroid_ir::Program`].

use crate::insn::{assemble, CodeItem, FieldIdx, MethodIdx, PoolResolver, StringIdx, TypeIdx};
use backdroid_ir::{ClassName, FieldSig, MethodSig, Modifiers, Program, Type};
use std::collections::HashMap;

/// A proto (method prototype): shorty, return type, parameter types.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ProtoId {
    /// Short-form descriptor, e.g. `VL` for `(Object) -> void`.
    pub shorty: String,
    /// Return type index.
    pub ret: TypeIdx,
    /// Parameter type indices.
    pub params: Vec<TypeIdx>,
}

/// A method reference in the pool.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MethodId {
    /// Defining class type index.
    pub class: TypeIdx,
    /// Prototype index.
    pub proto: u32,
    /// Name string index.
    pub name: StringIdx,
}

/// A field reference in the pool.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct FieldId {
    /// Defining class type index.
    pub class: TypeIdx,
    /// Field type index.
    pub ty: TypeIdx,
    /// Name string index.
    pub name: StringIdx,
}

/// An encoded method inside a class definition.
#[derive(Clone, Debug)]
pub struct EncodedMethod {
    /// The pool index of this method.
    pub idx: MethodIdx,
    /// The original IR signature (kept for convenient cross-referencing).
    pub sig: MethodSig,
    /// Access flags.
    pub access: Modifiers,
    /// Whether the method sorts into dexdump's "direct" section
    /// (static/private/constructor) rather than "virtual".
    pub direct: bool,
    /// The assembled code, if the method is concrete.
    pub code: Option<CodeItem>,
}

/// An encoded field inside a class definition.
#[derive(Clone, Debug)]
pub struct EncodedField {
    /// The pool index of this field.
    pub idx: FieldIdx,
    /// The original IR signature.
    pub sig: FieldSig,
    /// Access flags.
    pub access: Modifiers,
}

/// An encoded class definition.
#[derive(Clone, Debug)]
pub struct ClassDef {
    /// This class's type index.
    pub ty: TypeIdx,
    /// The class name.
    pub name: ClassName,
    /// Superclass type index, if any.
    pub superclass: Option<TypeIdx>,
    /// Implemented interface type indices.
    pub interfaces: Vec<TypeIdx>,
    /// Access flags.
    pub access: Modifiers,
    /// Fields, in declaration order.
    pub fields: Vec<EncodedField>,
    /// Methods, in declaration order.
    pub methods: Vec<EncodedMethod>,
}

/// String/type/proto/field/method pools under construction.
#[derive(Default, Debug)]
pub struct PoolBuilder {
    strings: Vec<String>,
    string_map: HashMap<String, u32>,
    types: Vec<String>, // descriptors
    type_map: HashMap<String, u32>,
    protos: Vec<ProtoId>,
    proto_map: HashMap<(u32, Vec<u32>), u32>,
    fields: Vec<FieldId>,
    field_map: HashMap<String, u32>,
    field_sigs: Vec<FieldSig>,
    methods: Vec<MethodId>,
    method_map: HashMap<String, u32>,
    method_sigs: Vec<MethodSig>,
}

impl PoolBuilder {
    fn intern_string(&mut self, s: &str) -> StringIdx {
        if let Some(&i) = self.string_map.get(s) {
            return StringIdx(i);
        }
        let i = self.strings.len() as u32;
        self.strings.push(s.to_string());
        self.string_map.insert(s.to_string(), i);
        StringIdx(i)
    }

    fn intern_type(&mut self, t: &Type) -> TypeIdx {
        let desc = t.descriptor();
        if let Some(&i) = self.type_map.get(&desc) {
            return TypeIdx(i);
        }
        let i = self.types.len() as u32;
        self.types.push(desc.clone());
        self.type_map.insert(desc, i);
        TypeIdx(i)
    }

    fn shorty_char(t: &Type) -> char {
        match t {
            Type::Void => 'V',
            Type::Boolean => 'Z',
            Type::Byte => 'B',
            Type::Short => 'S',
            Type::Char => 'C',
            Type::Int => 'I',
            Type::Long => 'J',
            Type::Float => 'F',
            Type::Double => 'D',
            Type::Object(_) | Type::Array(_) => 'L',
        }
    }

    fn intern_proto(&mut self, m: &MethodSig) -> u32 {
        let ret = self.intern_type(m.ret());
        let params: Vec<TypeIdx> = m.params().iter().map(|p| self.intern_type(p)).collect();
        let key = (ret.0, params.iter().map(|p| p.0).collect::<Vec<_>>());
        if let Some(&i) = self.proto_map.get(&key) {
            return i;
        }
        let mut shorty = String::new();
        shorty.push(Self::shorty_char(m.ret()));
        for p in m.params() {
            shorty.push(Self::shorty_char(p));
        }
        let i = self.protos.len() as u32;
        self.protos.push(ProtoId {
            shorty,
            ret,
            params,
        });
        self.proto_map.insert(key, i);
        i
    }
}

impl PoolResolver for PoolBuilder {
    fn string_idx(&mut self, s: &str) -> StringIdx {
        self.intern_string(s)
    }

    fn type_idx(&mut self, t: &Type) -> TypeIdx {
        self.intern_type(t)
    }

    fn field_idx(&mut self, f: &FieldSig) -> FieldIdx {
        let key = f.to_string();
        if let Some(&i) = self.field_map.get(&key) {
            return FieldIdx(i);
        }
        let class = self.intern_type(&Type::Object(f.class().clone()));
        let ty = self.intern_type(f.ty());
        let name = self.intern_string(f.name());
        let i = self.fields.len() as u32;
        self.fields.push(FieldId { class, ty, name });
        self.field_sigs.push(f.clone());
        self.field_map.insert(key, i);
        FieldIdx(i)
    }

    fn method_idx(&mut self, m: &MethodSig) -> MethodIdx {
        let key = m.to_string();
        if let Some(&i) = self.method_map.get(&key) {
            return MethodIdx(i);
        }
        let class = self.intern_type(&Type::Object(m.class().clone()));
        let proto = self.intern_proto(m);
        let name = self.intern_string(m.name());
        let i = self.methods.len() as u32;
        self.methods.push(MethodId { class, proto, name });
        self.method_sigs.push(m.clone());
        self.method_map.insert(key, i);
        MethodIdx(i)
    }
}

/// One encoded DEX file.
#[derive(Debug)]
pub struct DexFile {
    pools: PoolBuilder,
    class_defs: Vec<ClassDef>,
}

impl DexFile {
    /// Encodes `classes` (taken from `program`) into one DEX file.
    fn encode_classes(program: &Program, names: &[ClassName]) -> DexFile {
        let mut pools = PoolBuilder::default();
        let mut class_defs = Vec::new();
        for name in names {
            let class = program
                .class(name)
                .expect("encode_classes: class not in program");
            let ty = pools.intern_type(&Type::Object(name.clone()));
            let superclass = class
                .superclass()
                .map(|s| pools.intern_type(&Type::Object(s.clone())));
            let interfaces = class
                .interfaces()
                .iter()
                .map(|i| pools.intern_type(&Type::Object(i.clone())))
                .collect();
            let fields = class
                .fields()
                .iter()
                .map(|f| EncodedField {
                    idx: pools.field_idx(f.sig()),
                    sig: f.sig().clone(),
                    access: f.modifiers(),
                })
                .collect();
            let methods = class
                .methods()
                .iter()
                .map(|m| {
                    let idx = pools.method_idx(m.sig());
                    let code = m.body().map(|b| assemble(b, &mut pools));
                    EncodedMethod {
                        idx,
                        sig: m.sig().clone(),
                        access: m.modifiers(),
                        direct: m.modifiers().is_static()
                            || m.modifiers().is_private()
                            || m.sig().is_init(),
                        code,
                    }
                })
                .collect();
            class_defs.push(ClassDef {
                ty,
                name: name.clone(),
                superclass,
                interfaces,
                access: class.modifiers(),
                fields,
                methods,
            });
        }
        DexFile { pools, class_defs }
    }

    /// The class definitions.
    pub fn class_defs(&self) -> &[ClassDef] {
        &self.class_defs
    }

    /// Number of method references in the pool (the multidex limit counts
    /// these, not definitions).
    pub fn method_ref_count(&self) -> usize {
        self.pools.methods.len()
    }

    /// Resolves a string pool index.
    pub fn string(&self, idx: StringIdx) -> &str {
        &self.pools.strings[idx.0 as usize]
    }

    /// Resolves a type pool index to its descriptor.
    pub fn type_desc(&self, idx: TypeIdx) -> &str {
        &self.pools.types[idx.0 as usize]
    }

    /// Resolves a field pool index to its IR signature.
    pub fn field_sig(&self, idx: FieldIdx) -> &FieldSig {
        &self.pools.field_sigs[idx.0 as usize]
    }

    /// Resolves a method pool index to its IR signature.
    pub fn method_sig(&self, idx: MethodIdx) -> &MethodSig {
        &self.pools.method_sigs[idx.0 as usize]
    }

    /// Estimated on-disk size in bytes, following the real DEX layout
    /// arithmetic (header + pools + class defs + code).
    pub fn byte_size(&self) -> u64 {
        let mut n: u64 = 112; // header
        n += self
            .pools
            .strings
            .iter()
            .map(|s| s.len() as u64 + 5)
            .sum::<u64>();
        n += self.pools.types.len() as u64 * 4;
        n += self
            .pools
            .protos
            .iter()
            .map(|p| 12 + p.params.len() as u64 * 2)
            .sum::<u64>();
        n += self.pools.fields.len() as u64 * 8;
        n += self.pools.methods.len() as u64 * 8;
        n += self.class_defs.len() as u64 * 32;
        for c in &self.class_defs {
            n += c.fields.len() as u64 * 4;
            for m in &c.methods {
                n += 8;
                if let Some(code) = &m.code {
                    n += 16 + code.total_units as u64 * 2;
                }
            }
        }
        n
    }
}

/// A (possibly multidex) DEX image: what an APK actually carries.
#[derive(Debug)]
pub struct DexImage {
    files: Vec<DexFile>,
}

/// Default method-reference limit that forces a multidex split, matching
/// Android's 64K reference limit.
pub const MULTIDEX_METHOD_LIMIT: usize = 65_536;

impl DexImage {
    /// Encodes a whole program with the default multidex limit.
    pub fn encode(program: &Program) -> DexImage {
        Self::encode_with_limit(program, MULTIDEX_METHOD_LIMIT)
    }

    /// Encodes with a custom method-reference limit (tests use small
    /// limits to exercise the split + merge path).
    ///
    /// The split is computed in a single pass by tracking the set of
    /// method references each class contributes (declared methods plus
    /// invoke callees); each sealed chunk is then encoded exactly once.
    pub fn encode_with_limit(program: &Program, limit: usize) -> DexImage {
        assert!(limit > 0, "multidex limit must be positive");
        use std::collections::HashSet;
        let mut files = Vec::new();
        let mut chunk: Vec<ClassName> = Vec::new();
        let mut refs: HashSet<String> = HashSet::new();

        for class in program.classes() {
            // Method references this class contributes to the pool.
            let mut class_refs: Vec<String> = Vec::new();
            for m in class.methods() {
                class_refs.push(m.sig().to_string());
                if let Some(body) = m.body() {
                    for stmt in body.stmts() {
                        if let Some(ie) = stmt.invoke_expr() {
                            class_refs.push(ie.callee.to_string());
                        }
                    }
                }
            }
            let new_refs = class_refs.iter().filter(|r| !refs.contains(*r)).count();
            if !chunk.is_empty() && refs.len() + new_refs > limit {
                files.push(DexFile::encode_classes(program, &chunk));
                chunk.clear();
                refs.clear();
            }
            refs.extend(class_refs);
            chunk.push(class.name().clone());
        }
        if !chunk.is_empty() || files.is_empty() {
            files.push(DexFile::encode_classes(program, &chunk));
        }
        DexImage { files }
    }

    /// The individual dex files (`classes.dex`, `classes2.dex`, …).
    pub fn files(&self) -> &[DexFile] {
        &self.files
    }

    /// Total estimated byte size of all dex files.
    pub fn byte_size(&self) -> u64 {
        self.files.iter().map(DexFile::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Value};

    fn tiny_program(n_classes: usize) -> Program {
        let mut p = Program::new();
        for i in 0..n_classes {
            let name = ClassName::new(format!("com.t.C{i}"));
            let mut m = MethodBuilder::public(&name, "work", vec![], Type::Void);
            let this = m.this();
            m.invoke(InvokeExpr::call_virtual(
                MethodSig::new(format!("com.t.C{i}"), "helper", vec![Type::Int], Type::Void),
                this,
                vec![Value::int(i as i64)],
            ));
            let mut h = MethodBuilder::public(&name, "helper", vec![Type::Int], Type::Void);
            h.ret_void();
            p.add_class(
                ClassBuilder::new(name.as_str())
                    .method(m.build())
                    .method(h.build())
                    .build(),
            );
        }
        p
    }

    #[test]
    fn single_dex_encoding() {
        let p = tiny_program(3);
        let img = DexImage::encode(&p);
        assert_eq!(img.files().len(), 1);
        let f = &img.files()[0];
        assert_eq!(f.class_defs().len(), 3);
        assert!(f.method_ref_count() >= 6);
        assert!(f.byte_size() > 112);
    }

    #[test]
    fn multidex_splits_and_covers_all_classes() {
        let p = tiny_program(10);
        let img = DexImage::encode_with_limit(&p, 4);
        assert!(img.files().len() > 1, "expected a multidex split");
        let total: usize = img.files().iter().map(|f| f.class_defs().len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn pools_deduplicate() {
        let p = tiny_program(1);
        let img = DexImage::encode(&p);
        let f = &img.files()[0];
        // "work" + "helper" + "V"... strings unique
        let strings: std::collections::HashSet<&String> = f.pools.strings.iter().collect();
        assert_eq!(strings.len(), f.pools.strings.len());
        let types: std::collections::HashSet<&String> = f.pools.types.iter().collect();
        assert_eq!(types.len(), f.pools.types.len());
    }

    #[test]
    fn direct_vs_virtual_classification() {
        let name = ClassName::new("com.t.K");
        let mut p = Program::new();
        let mut ctor = MethodBuilder::constructor(&name, vec![]);
        ctor.ret_void();
        let mut stat = MethodBuilder::public_static(&name, "s", vec![], Type::Void);
        stat.ret_void();
        let mut virt = MethodBuilder::public(&name, "v", vec![], Type::Void);
        virt.ret_void();
        p.add_class(
            ClassBuilder::new("com.t.K")
                .method(ctor.build())
                .method(stat.build())
                .method(virt.build())
                .build(),
        );
        let img = DexImage::encode(&p);
        let defs = img.files()[0].class_defs();
        let by_name: HashMap<&str, bool> = defs[0]
            .methods
            .iter()
            .map(|m| (m.sig.name(), m.direct))
            .collect();
        assert!(by_name["<init>"]);
        assert!(by_name["s"]);
        assert!(!by_name["v"]);
    }

    #[test]
    fn byte_size_grows_with_code() {
        let small = DexImage::encode(&tiny_program(2)).byte_size();
        let large = DexImage::encode(&tiny_program(20)).byte_size();
        assert!(large > small);
    }
}
