//! # backdroid-dex
//!
//! A synthetic DEX container and `dexdump`-style disassembler — the
//! *bytecode search space* of the BackDroid reproduction (paper §III,
//! Fig 2).
//!
//! The pipeline matches the paper's preprocessing step: an IR
//! [`backdroid_ir::Program`] is encoded into a (possibly multidex)
//! [`DexImage`], whose files are then merged and disassembled into one
//! plaintext via [`dump_image`]. BackDroid's search engine only ever sees
//! that text, never the structured pools.
//!
//! ```
//! use backdroid_dex::{DexImage, dump_image};
//! use backdroid_ir::{ClassBuilder, MethodBuilder, Program, Type, ClassName};
//!
//! let name = ClassName::new("com.example.A");
//! let mut m = MethodBuilder::public(&name, "go", vec![], Type::Void);
//! m.ret_void();
//! let mut p = Program::new();
//! p.add_class(ClassBuilder::new("com.example.A").method(m.build()).build());
//!
//! let image = DexImage::encode(&p);
//! let text = dump_image(&image);
//! assert!(text.contains("Class descriptor  : 'Lcom/example/A;'"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dump;
pub mod insn;
pub mod model;

pub use dump::{
    banner_name, class_descriptor, dump_dex, dump_image, dump_image_with_marks, field_ref_string,
    method_ref_string, parse_field_ref, parse_method_ref, ClassMark,
};
pub use insn::{CodeItem, FieldIdx, Insn, MethodIdx, PoolResolver, Reg, StringIdx, TypeIdx};
pub use model::{ClassDef, DexFile, DexImage, EncodedField, EncodedMethod, MULTIDEX_METHOD_LIMIT};

/// Estimated total APK size in bytes for an encoded image: DEX bytes plus
/// a resource/asset padding factor. Modern apps carry most of their bytes
/// in resources; the paper's Table I sizes (MB) include them, so the
/// workload generator controls `resource_bytes` directly.
pub fn apk_size_bytes(image: &DexImage, resource_bytes: u64) -> u64 {
    image.byte_size() + resource_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, ClassName, MethodBuilder, Program, Type};

    #[test]
    fn apk_size_includes_resources() {
        let name = ClassName::new("com.example.A");
        let mut m = MethodBuilder::public(&name, "go", vec![], Type::Void);
        m.ret_void();
        let mut p = Program::new();
        p.add_class(ClassBuilder::new("com.example.A").method(m.build()).build());
        let img = DexImage::encode(&p);
        let base = apk_size_bytes(&img, 0);
        assert_eq!(apk_size_bytes(&img, 1_000_000), base + 1_000_000);
    }
}
