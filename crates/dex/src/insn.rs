//! The DEX-level instruction set and the IR → instruction assembler.
//!
//! Instructions reference constant-pool indices ([`crate::model::DexFile`])
//! and virtual registers `vN`. The set covers everything the IR can
//! express; opcode/mnemonic names follow real dalvik bytecode so that the
//! disassembled text looks like genuine `dexdump` output.

use backdroid_ir::{
    BinOp, Const, InvokeKind, LocalId, MethodBody, Place, Rvalue, Stmt, Type, Value,
};

/// A virtual register.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Reg(pub u32);

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Pool index newtypes keep the operand kinds apart.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StringIdx(pub u32);
/// Index into the type-id pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TypeIdx(pub u32);
/// Index into the field-id pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FieldIdx(pub u32);
/// Index into the method-id pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MethodIdx(pub u32);

/// One dalvik instruction (slightly idealized: register-width constraints
/// of the real encodings are not enforced).
#[derive(Clone, PartialEq, Debug)]
#[allow(missing_docs)]
pub enum Insn {
    Nop,
    Move {
        dst: Reg,
        src: Reg,
    },
    /// `move-result` / `move-result-object` after an invoke.
    MoveResult {
        dst: Reg,
        object: bool,
    },
    ConstInt {
        dst: Reg,
        value: i64,
    },
    ConstString {
        dst: Reg,
        idx: StringIdx,
    },
    ConstClass {
        dst: Reg,
        idx: TypeIdx,
    },
    ConstNull {
        dst: Reg,
    },
    NewInstance {
        dst: Reg,
        idx: TypeIdx,
    },
    NewArray {
        dst: Reg,
        size: Reg,
        idx: TypeIdx,
    },
    ArrayLength {
        dst: Reg,
        src: Reg,
    },
    CheckCast {
        reg: Reg,
        idx: TypeIdx,
    },
    InstanceOf {
        dst: Reg,
        src: Reg,
        idx: TypeIdx,
    },
    Iget {
        dst: Reg,
        obj: Reg,
        idx: FieldIdx,
        object: bool,
    },
    Iput {
        src: Reg,
        obj: Reg,
        idx: FieldIdx,
        object: bool,
    },
    Sget {
        dst: Reg,
        idx: FieldIdx,
        object: bool,
    },
    Sput {
        src: Reg,
        idx: FieldIdx,
        object: bool,
    },
    Aget {
        dst: Reg,
        arr: Reg,
        index: Reg,
    },
    Aput {
        src: Reg,
        arr: Reg,
        index: Reg,
    },
    Invoke {
        kind: InvokeKind,
        idx: MethodIdx,
        args: Vec<Reg>,
    },
    Binop {
        op: BinOp,
        dst: Reg,
        a: Reg,
        b: Reg,
    },
    /// `if-<op> vA, vB, +off` — target is a code-unit offset, patched late.
    IfTest {
        mnemonic: &'static str,
        a: Reg,
        b: Reg,
        target_units: u32,
    },
    Goto {
        target_units: u32,
    },
    ReturnVoid,
    Return {
        reg: Reg,
        object: bool,
    },
    Throw {
        reg: Reg,
    },
}

impl Insn {
    /// Size of the instruction in 16-bit code units (approximating the
    /// real dalvik formats; only used for offsets and size accounting).
    pub fn units(&self) -> u32 {
        match self {
            Insn::Nop | Insn::ReturnVoid => 1,
            Insn::Move { .. }
            | Insn::MoveResult { .. }
            | Insn::ArrayLength { .. }
            | Insn::ConstNull { .. }
            | Insn::Return { .. }
            | Insn::Throw { .. }
            | Insn::Goto { .. } => 1,
            Insn::ConstInt { value, .. } => {
                if *value >= -8 && *value < 8 {
                    1
                } else if *value >= i16::MIN as i64 && *value <= i16::MAX as i64 {
                    2
                } else {
                    3
                }
            }
            Insn::ConstString { .. }
            | Insn::ConstClass { .. }
            | Insn::NewInstance { .. }
            | Insn::CheckCast { .. }
            | Insn::InstanceOf { .. }
            | Insn::NewArray { .. }
            | Insn::Iget { .. }
            | Insn::Iput { .. }
            | Insn::Sget { .. }
            | Insn::Sput { .. }
            | Insn::Aget { .. }
            | Insn::Aput { .. }
            | Insn::Binop { .. }
            | Insn::IfTest { .. } => 2,
            Insn::Invoke { .. } => 3,
        }
    }

    /// A deterministic pseudo-opcode byte used for the fake hex column in
    /// the dump (faithful-looking output, stable across runs).
    pub fn pseudo_opcode(&self) -> u8 {
        match self {
            Insn::Nop => 0x00,
            Insn::Move { .. } => 0x01,
            Insn::MoveResult { .. } => 0x0a,
            Insn::ReturnVoid => 0x0e,
            Insn::Return { .. } => 0x0f,
            Insn::ConstInt { .. } => 0x13,
            Insn::ConstString { .. } => 0x1a,
            Insn::ConstClass { .. } => 0x1c,
            Insn::ConstNull { .. } => 0x12,
            Insn::CheckCast { .. } => 0x1f,
            Insn::InstanceOf { .. } => 0x20,
            Insn::ArrayLength { .. } => 0x21,
            Insn::NewInstance { .. } => 0x22,
            Insn::NewArray { .. } => 0x23,
            Insn::Throw { .. } => 0x27,
            Insn::Goto { .. } => 0x28,
            Insn::Aget { .. } => 0x44,
            Insn::Aput { .. } => 0x4b,
            Insn::Iget { .. } => 0x52,
            Insn::Iput { .. } => 0x59,
            Insn::Sget { .. } => 0x60,
            Insn::Sput { .. } => 0x67,
            Insn::IfTest { .. } => 0x32,
            Insn::Invoke { kind, .. } => match kind {
                InvokeKind::Virtual => 0x6e,
                InvokeKind::Super => 0x6f,
                InvokeKind::Special => 0x70,
                InvokeKind::Static => 0x71,
                InvokeKind::Interface => 0x72,
            },
            Insn::Binop { .. } => 0x90,
        }
    }
}

/// The assembled code item for one method.
#[derive(Clone, Debug, Default)]
pub struct CodeItem {
    /// Instructions in order.
    pub insns: Vec<Insn>,
    /// Number of registers used.
    pub registers: u32,
    /// Code-unit offset of each instruction.
    pub offsets: Vec<u32>,
    /// Total size in 16-bit code units.
    pub total_units: u32,
}

/// Pool-index resolution callbacks the assembler needs. Implemented by
/// [`crate::model::PoolBuilder`].
pub trait PoolResolver {
    /// Interns a string literal.
    fn string_idx(&mut self, s: &str) -> StringIdx;
    /// Interns a type.
    fn type_idx(&mut self, t: &Type) -> TypeIdx;
    /// Interns a field reference.
    fn field_idx(&mut self, f: &backdroid_ir::FieldSig) -> FieldIdx;
    /// Interns a method reference.
    fn method_idx(&mut self, m: &backdroid_ir::MethodSig) -> MethodIdx;
}

/// Assembles an IR method body into dalvik-style instructions.
pub fn assemble(body: &MethodBody, pools: &mut dyn PoolResolver) -> CodeItem {
    let mut max_local = 0u32;
    for l in body.locals() {
        max_local = max_local.max(l.id.0 + 1);
    }
    let scratch_base = max_local;
    let mut max_reg = max_local;

    // Pass 1: emit instructions per statement, recording (stmt_idx → first
    // insn position) so branch targets can be patched in pass 2.
    let mut insns: Vec<Insn> = Vec::new();
    let mut stmt_first_insn: Vec<usize> = Vec::with_capacity(body.len());
    // (insn position, IR stmt target) pairs to patch.
    let mut branch_patches: Vec<(usize, usize)> = Vec::new();

    for stmt in body.stmts() {
        stmt_first_insn.push(insns.len());
        let mut scratch = scratch_base;
        let mut alloc_scratch = || {
            let r = Reg(scratch);
            scratch += 1;
            r
        };
        // Materialize a Value into a register.
        macro_rules! mat {
            ($v:expr) => {{
                match $v {
                    Value::Local(l) => Reg(l.0),
                    Value::Const(c) => {
                        let r = alloc_scratch();
                        match c {
                            Const::Int(v) => insns.push(Insn::ConstInt { dst: r, value: *v }),
                            Const::Float(v) => insns.push(Insn::ConstInt {
                                dst: r,
                                value: v.to_bits() as i64,
                            }),
                            Const::Str(s) => {
                                let idx = pools.string_idx(s);
                                insns.push(Insn::ConstString { dst: r, idx })
                            }
                            Const::Class(c) => {
                                let idx = pools.type_idx(&Type::Object(c.clone()));
                                insns.push(Insn::ConstClass { dst: r, idx })
                            }
                            Const::Null => insns.push(Insn::ConstNull { dst: r }),
                        }
                        r
                    }
                }
            }};
        }

        match stmt {
            Stmt::Identity { .. } => {
                // Identity statements are implicit in dalvik (parameters
                // arrive in the top registers); a nop keeps a stable
                // one-to-one anchor for the statement in the dump.
                insns.push(Insn::Nop);
            }
            Stmt::Nop => insns.push(Insn::Nop),
            Stmt::Assign { place, rvalue } => {
                // Compute the rvalue into a register. When the destination
                // is a plain local, compute directly into it (like a real
                // compiler would) instead of bouncing through a scratch reg.
                let hint: Option<Reg> = match place {
                    Place::Local(l) => Some(Reg(l.0)),
                    _ => None,
                };
                let is_obj_ty = |t: &Type| t.is_reference();
                let src: Reg = match rvalue {
                    Rvalue::Use(Value::Const(c)) if hint.is_some() => {
                        let r = hint.expect("hint checked above");
                        match c {
                            Const::Int(v) => insns.push(Insn::ConstInt { dst: r, value: *v }),
                            Const::Float(v) => insns.push(Insn::ConstInt {
                                dst: r,
                                value: v.to_bits() as i64,
                            }),
                            Const::Str(s) => {
                                let idx = pools.string_idx(s);
                                insns.push(Insn::ConstString { dst: r, idx })
                            }
                            Const::Class(cn) => {
                                let idx = pools.type_idx(&Type::Object(cn.clone()));
                                insns.push(Insn::ConstClass { dst: r, idx })
                            }
                            Const::Null => insns.push(Insn::ConstNull { dst: r }),
                        }
                        r
                    }
                    Rvalue::Use(v) => mat!(v),
                    Rvalue::Read(p) => match p {
                        Place::Local(l) => Reg(l.0),
                        Place::InstanceField { base, field } => {
                            let dst = hint.unwrap_or_else(&mut alloc_scratch);
                            let idx = pools.field_idx(field);
                            insns.push(Insn::Iget {
                                dst,
                                obj: Reg(base.0),
                                idx,
                                object: is_obj_ty(field.ty()),
                            });
                            dst
                        }
                        Place::StaticField(field) => {
                            let dst = hint.unwrap_or_else(&mut alloc_scratch);
                            let idx = pools.field_idx(field);
                            insns.push(Insn::Sget {
                                dst,
                                idx,
                                object: is_obj_ty(field.ty()),
                            });
                            dst
                        }
                        Place::ArrayElem { base, index } => {
                            let i = mat!(index);
                            let dst = hint.unwrap_or_else(&mut alloc_scratch);
                            insns.push(Insn::Aget {
                                dst,
                                arr: Reg(base.0),
                                index: i,
                            });
                            dst
                        }
                    },
                    Rvalue::Binop(op, a, b) => {
                        let ra = mat!(a);
                        let rb = mat!(b);
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        insns.push(Insn::Binop {
                            op: *op,
                            dst,
                            a: ra,
                            b: rb,
                        });
                        dst
                    }
                    Rvalue::Cast(ty, v) => {
                        let r = mat!(v);
                        let idx = pools.type_idx(ty);
                        insns.push(Insn::CheckCast { reg: r, idx });
                        r
                    }
                    Rvalue::InstanceOf(c, v) => {
                        let r = mat!(v);
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        let idx = pools.type_idx(&Type::Object(c.clone()));
                        insns.push(Insn::InstanceOf { dst, src: r, idx });
                        dst
                    }
                    Rvalue::New(c) => {
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        let idx = pools.type_idx(&Type::Object(c.clone()));
                        insns.push(Insn::NewInstance { dst, idx });
                        dst
                    }
                    Rvalue::NewArray(t, len) => {
                        let l = mat!(len);
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        let idx = pools.type_idx(t);
                        insns.push(Insn::NewArray { dst, size: l, idx });
                        dst
                    }
                    Rvalue::Invoke(ie) => {
                        let mut regs = Vec::new();
                        if let Some(b) = ie.base {
                            regs.push(Reg(b.0));
                        }
                        for a in &ie.args {
                            regs.push(mat!(a));
                        }
                        let idx = pools.method_idx(&ie.callee);
                        insns.push(Insn::Invoke {
                            kind: ie.kind,
                            idx,
                            args: regs,
                        });
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        insns.push(Insn::MoveResult {
                            dst,
                            object: ie.callee.ret().is_reference(),
                        });
                        dst
                    }
                    Rvalue::Phi(ls) => {
                        // Shimple φ lowers to a move from its first input;
                        // the dump keeps it as a plain move.
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        let src = ls.first().map_or(dst, |l| Reg(l.0));
                        insns.push(Insn::Move { dst, src });
                        dst
                    }
                    Rvalue::Length(v) => {
                        let r = mat!(v);
                        let dst = hint.unwrap_or_else(&mut alloc_scratch);
                        insns.push(Insn::ArrayLength { dst, src: r });
                        dst
                    }
                };
                // Store into the destination place.
                match place {
                    Place::Local(l) => {
                        if Reg(l.0) != src {
                            insns.push(Insn::Move { dst: Reg(l.0), src });
                        }
                    }
                    Place::InstanceField { base, field } => {
                        let idx = pools.field_idx(field);
                        insns.push(Insn::Iput {
                            src,
                            obj: Reg(base.0),
                            idx,
                            object: field.ty().is_reference(),
                        });
                    }
                    Place::StaticField(field) => {
                        let idx = pools.field_idx(field);
                        insns.push(Insn::Sput {
                            src,
                            idx,
                            object: field.ty().is_reference(),
                        });
                    }
                    Place::ArrayElem { base, index } => {
                        let i = mat!(index);
                        insns.push(Insn::Aput {
                            src,
                            arr: Reg(base.0),
                            index: i,
                        });
                    }
                }
            }
            Stmt::Invoke(ie) => {
                let mut regs = Vec::new();
                if let Some(b) = ie.base {
                    regs.push(Reg(b.0));
                }
                for a in &ie.args {
                    regs.push(mat!(a));
                }
                let idx = pools.method_idx(&ie.callee);
                insns.push(Insn::Invoke {
                    kind: ie.kind,
                    idx,
                    args: regs,
                });
            }
            Stmt::Return(None) => insns.push(Insn::ReturnVoid),
            Stmt::Return(Some(v)) => {
                let r = mat!(v);
                insns.push(Insn::Return {
                    reg: r,
                    object: true,
                });
            }
            Stmt::If { op, a, b, target } => {
                let ra = mat!(a);
                let rb = mat!(b);
                let mnemonic = match op {
                    backdroid_ir::CondOp::Eq => "if-eq",
                    backdroid_ir::CondOp::Ne => "if-ne",
                    backdroid_ir::CondOp::Lt => "if-lt",
                    backdroid_ir::CondOp::Le => "if-le",
                    backdroid_ir::CondOp::Gt => "if-gt",
                    backdroid_ir::CondOp::Ge => "if-ge",
                };
                branch_patches.push((insns.len(), *target));
                insns.push(Insn::IfTest {
                    mnemonic,
                    a: ra,
                    b: rb,
                    target_units: 0,
                });
            }
            Stmt::Goto(target) => {
                branch_patches.push((insns.len(), *target));
                insns.push(Insn::Goto { target_units: 0 });
            }
            Stmt::Throw(v) => {
                let r = mat!(v);
                insns.push(Insn::Throw { reg: r });
            }
        }
        max_reg = max_reg.max(scratch);
    }

    // Pass 2: compute unit offsets and patch branch targets.
    let mut offsets = Vec::with_capacity(insns.len());
    let mut off = 0u32;
    for i in &insns {
        offsets.push(off);
        off += i.units();
    }
    for (pos, stmt_target) in branch_patches {
        let insn_target = if stmt_target < stmt_first_insn.len() {
            stmt_first_insn[stmt_target]
        } else {
            insns.len().saturating_sub(1)
        };
        let unit = offsets.get(insn_target).copied().unwrap_or(0);
        match &mut insns[pos] {
            Insn::IfTest { target_units, .. } | Insn::Goto { target_units } => *target_units = unit,
            _ => unreachable!("patch target is not a branch"),
        }
    }

    CodeItem {
        insns,
        registers: max_reg,
        offsets,
        total_units: off,
    }
}

/// Local helper mirroring [`LocalId`] to register mapping for tests.
pub fn reg_of(l: LocalId) -> Reg {
    Reg(l.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassName, FieldSig, InvokeExpr, MethodBuilder, MethodSig};
    use std::collections::HashMap;

    #[derive(Default)]
    struct FakePools {
        strings: HashMap<String, u32>,
        types: HashMap<String, u32>,
        fields: HashMap<String, u32>,
        methods: HashMap<String, u32>,
    }

    impl PoolResolver for FakePools {
        fn string_idx(&mut self, s: &str) -> StringIdx {
            let n = self.strings.len() as u32;
            StringIdx(*self.strings.entry(s.into()).or_insert(n))
        }
        fn type_idx(&mut self, t: &Type) -> TypeIdx {
            let n = self.types.len() as u32;
            TypeIdx(*self.types.entry(t.descriptor()).or_insert(n))
        }
        fn field_idx(&mut self, f: &FieldSig) -> FieldIdx {
            let n = self.fields.len() as u32;
            FieldIdx(*self.fields.entry(f.to_string()).or_insert(n))
        }
        fn method_idx(&mut self, m: &MethodSig) -> MethodIdx {
            let n = self.methods.len() as u32;
            MethodIdx(*self.methods.entry(m.to_string()).or_insert(n))
        }
    }

    #[test]
    fn assembles_invoke_and_move_result() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public(&class, "m", vec![], Type::Void);
        let callee = MethodSig::new("com.a.C", "get", vec![], Type::string());
        let this = b.this();
        let _r = b.invoke_assign(InvokeExpr::call_virtual(callee, this, vec![]));
        let m = b.build();
        let mut pools = FakePools::default();
        let code = assemble(m.body().unwrap(), &mut pools);
        let has_invoke = code.insns.iter().any(|i| {
            matches!(
                i,
                Insn::Invoke {
                    kind: InvokeKind::Virtual,
                    ..
                }
            )
        });
        let has_move_result = code
            .insns
            .iter()
            .any(|i| matches!(i, Insn::MoveResult { .. }));
        assert!(has_invoke && has_move_result);
        assert_eq!(code.offsets.len(), code.insns.len());
    }

    #[test]
    fn const_args_are_materialized() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public_static(&class, "m", vec![], Type::Void);
        let callee = MethodSig::new("com.a.C", "log", vec![Type::string()], Type::Void);
        b.invoke(InvokeExpr::call_static(callee, vec![Value::str("AES/ECB")]));
        let m = b.build();
        let mut pools = FakePools::default();
        let code = assemble(m.body().unwrap(), &mut pools);
        assert!(code
            .insns
            .iter()
            .any(|i| matches!(i, Insn::ConstString { .. })));
        assert!(pools.strings.contains_key("AES/ECB"));
    }

    #[test]
    fn branch_targets_are_patched_to_units() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public_static(&class, "m", vec![Type::Int], Type::Void);
        let end = b.reserve_label();
        b.if_goto(
            backdroid_ir::CondOp::Eq,
            Value::Local(b.param(0)),
            Value::int(0),
            end,
        );
        b.invoke(InvokeExpr::call_static(
            MethodSig::new("com.a.C", "hit", vec![], Type::Void),
            vec![],
        ));
        b.place_label(end);
        b.ret_void();
        let m = b.build();
        let mut pools = FakePools::default();
        let code = assemble(m.body().unwrap(), &mut pools);
        let (patched, nop_unit) = {
            let mut patched = None;
            for i in &code.insns {
                if let Insn::IfTest { target_units, .. } = i {
                    patched = Some(*target_units);
                }
            }
            // the landing pad nop is the second-to-last insn (before return)
            let pos = code.insns.len() - 2;
            assert!(matches!(code.insns[pos], Insn::Nop));
            (patched.unwrap(), code.offsets[pos])
        };
        assert_eq!(patched, nop_unit);
    }

    #[test]
    fn offsets_are_monotonic() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public_static(&class, "m", vec![], Type::Int);
        let x = b.assign_const(Const::Int(100_000)); // forces a wide const
        let y = b.binop(BinOp::Add, Value::Local(x), Value::int(1), Type::Int);
        b.ret(Value::Local(y));
        let m = b.build();
        let mut pools = FakePools::default();
        let code = assemble(m.body().unwrap(), &mut pools);
        for w in code.offsets.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(
            code.total_units,
            code.insns.iter().map(Insn::units).sum::<u32>()
        );
    }
}
