//! The dexdump-style disassembler.
//!
//! Produces the *bytecode plaintext* that BackDroid's on-the-fly search
//! greps (paper §III step 1). The layout mirrors real `dexdump -d` output,
//! including the quirks the paper has to work around: the per-method
//! banner line prints the dotted class name with inner-class `$` turned
//! into `.` (§IV-A step 2: "an inner class needs to add back the symbol
//! `$`").

use crate::insn::Insn;
use crate::model::{ClassDef, DexFile, DexImage, EncodedMethod};
use backdroid_ir::{ClassName, FieldSig, MethodSig, Type};
use std::fmt::Write as _;

/// The bytecode reference form of a method, as it appears in dexdump
/// operand positions: `Lcom/a/B;.start:(I)V`.
pub fn method_ref_string(sig: &MethodSig) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "L{};.{}:(",
        sig.class().as_str().replace('.', "/"),
        sig.name()
    );
    for p in sig.params() {
        s.push_str(&p.descriptor());
    }
    s.push(')');
    s.push_str(&sig.ret().descriptor());
    s
}

/// Parses a bytecode method reference back into a signature.
/// Inverse of [`method_ref_string`].
pub fn parse_method_ref(s: &str) -> Option<MethodSig> {
    // Lcom/a/B;.name:(params)ret
    let class_end = s.find(";.")?;
    let class_desc = &s[..class_end + 1];
    let Type::Object(class) = Type::from_descriptor(class_desc)? else {
        return None;
    };
    let rest = &s[class_end + 2..];
    let (name, proto) = rest.split_once(":(")?;
    let (params_str, ret_str) = proto.split_once(')')?;
    let mut params = Vec::new();
    let mut cur = params_str;
    while !cur.is_empty() {
        let (ty, rest) = Type::parse_descriptor_prefix(cur)?;
        params.push(ty);
        cur = rest;
    }
    let ret = Type::from_descriptor(ret_str)?;
    Some(MethodSig::new(class, name, params, ret))
}

/// The bytecode reference form of a field:
/// `Lcom/a/B;.httpServer:Lcom/c/D;`.
pub fn field_ref_string(sig: &FieldSig) -> String {
    format!(
        "L{};.{}:{}",
        sig.class().as_str().replace('.', "/"),
        sig.name(),
        sig.ty().descriptor()
    )
}

/// Parses a bytecode field reference. Inverse of [`field_ref_string`].
pub fn parse_field_ref(s: &str) -> Option<FieldSig> {
    let class_end = s.find(";.")?;
    let Type::Object(class) = Type::from_descriptor(&s[..class_end + 1])? else {
        return None;
    };
    let rest = &s[class_end + 2..];
    let (name, ty_str) = rest.split_once(':')?;
    Some(FieldSig::new(class, name, Type::from_descriptor(ty_str)?))
}

/// The `Lcom/a/B;` descriptor of a class name.
pub fn class_descriptor(name: &ClassName) -> String {
    format!("L{};", name.as_str().replace('.', "/"))
}

/// The proto string used in method banner/type lines: `(I)V`.
fn proto_string(sig: &MethodSig) -> String {
    let mut s = String::from("(");
    for p in sig.params() {
        s.push_str(&p.descriptor());
    }
    s.push(')');
    s.push_str(&sig.ret().descriptor());
    s
}

/// The dotted banner form dexdump prints inside code listings, with the
/// inner-class `$` flattened to `.`:
/// `com.connectsdk.service.NetcastTVService.1.run:()V`.
pub fn banner_name(sig: &MethodSig) -> String {
    format!(
        "{}.{}:{}",
        sig.class().as_str().replace('$', "."),
        sig.name(),
        proto_string(sig)
    )
}

fn access_suffix(access: backdroid_ir::Modifiers, is_init: bool) -> String {
    let mut names = Vec::new();
    if access.is_public() {
        names.push("PUBLIC");
    }
    if access.is_private() {
        names.push("PRIVATE");
    }
    if access.is_static() {
        names.push("STATIC");
    }
    if access.is_final() {
        names.push("FINAL");
    }
    if access.is_abstract() {
        names.push("ABSTRACT");
    }
    if access.is_interface() {
        names.push("INTERFACE");
    }
    if is_init {
        names.push("CONSTRUCTOR");
    }
    format!("0x{:04x} ({})", access.bits(), names.join(" "))
}

/// Renders fake code-word hex for an instruction (stable filler so the
/// dump *looks* like dexdump output; never parsed by the search).
fn fake_words(insn: &Insn, unit_off: u32) -> String {
    let op = insn.pseudo_opcode() as u32;
    let mut words = Vec::new();
    for k in 0..insn.units().min(3) {
        let w = (op << 8) ^ (unit_off.wrapping_mul(0x9e37).wrapping_add(k * 0x515d)) & 0xffff;
        words.push(format!("{:04x}", w & 0xffff));
    }
    words.join(" ")
}

struct Renderer<'a> {
    dex: &'a DexFile,
    out: String,
    /// Fake absolute file offset, advanced per code unit.
    abs: u32,
}

impl<'a> Renderer<'a> {
    fn operand(&self, insn: &Insn) -> String {
        match insn {
            Insn::Nop => "nop // spacer".into(),
            Insn::Move { dst, src } => format!("move-object {dst}, {src}"),
            Insn::MoveResult { dst, object } => {
                if *object {
                    format!("move-result-object {dst}")
                } else {
                    format!("move-result {dst}")
                }
            }
            Insn::ConstInt { dst, value } => format!("const {dst}, #int {value}"),
            Insn::ConstString { dst, idx } => format!(
                "const-string {dst}, \"{}\" // string@{:04x}",
                self.dex.string(*idx),
                idx.0
            ),
            Insn::ConstClass { dst, idx } => format!(
                "const-class {dst}, {} // type@{:04x}",
                self.dex.type_desc(*idx),
                idx.0
            ),
            Insn::ConstNull { dst } => format!("const/4 {dst}, #int 0 // null"),
            Insn::NewInstance { dst, idx } => format!(
                "new-instance {dst}, {} // type@{:04x}",
                self.dex.type_desc(*idx),
                idx.0
            ),
            Insn::NewArray { dst, size, idx } => format!(
                "new-array {dst}, {size}, {} // type@{:04x}",
                self.dex.type_desc(*idx),
                idx.0
            ),
            Insn::ArrayLength { dst, src } => format!("array-length {dst}, {src}"),
            Insn::CheckCast { reg, idx } => format!(
                "check-cast {reg}, {} // type@{:04x}",
                self.dex.type_desc(*idx),
                idx.0
            ),
            Insn::InstanceOf { dst, src, idx } => format!(
                "instance-of {dst}, {src}, {} // type@{:04x}",
                self.dex.type_desc(*idx),
                idx.0
            ),
            Insn::Iget {
                dst,
                obj,
                idx,
                object,
            } => format!(
                "iget{} {dst}, {obj}, {} // field@{:04x}",
                if *object { "-object" } else { "" },
                field_ref_string(self.dex.field_sig(*idx)),
                idx.0
            ),
            Insn::Iput {
                src,
                obj,
                idx,
                object,
            } => format!(
                "iput{} {src}, {obj}, {} // field@{:04x}",
                if *object { "-object" } else { "" },
                field_ref_string(self.dex.field_sig(*idx)),
                idx.0
            ),
            Insn::Sget { dst, idx, object } => format!(
                "sget{} {dst}, {} // field@{:04x}",
                if *object { "-object" } else { "" },
                field_ref_string(self.dex.field_sig(*idx)),
                idx.0
            ),
            Insn::Sput { src, idx, object } => format!(
                "sput{} {src}, {} // field@{:04x}",
                if *object { "-object" } else { "" },
                field_ref_string(self.dex.field_sig(*idx)),
                idx.0
            ),
            Insn::Aget { dst, arr, index } => format!("aget-object {dst}, {arr}, {index}"),
            Insn::Aput { src, arr, index } => format!("aput-object {src}, {arr}, {index}"),
            Insn::Invoke { kind, idx, args } => {
                let regs = args
                    .iter()
                    .map(|r| r.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "{} {{{regs}}}, {} // method@{:04x}",
                    kind.dex_mnemonic(),
                    method_ref_string(self.dex.method_sig(*idx)),
                    idx.0
                )
            }
            Insn::Binop { op, dst, a, b } => {
                let mnem = match op {
                    backdroid_ir::BinOp::Add => "add-int",
                    backdroid_ir::BinOp::Sub => "sub-int",
                    backdroid_ir::BinOp::Mul => "mul-int",
                    backdroid_ir::BinOp::Div => "div-int",
                    backdroid_ir::BinOp::Rem => "rem-int",
                    backdroid_ir::BinOp::And => "and-int",
                    backdroid_ir::BinOp::Or => "or-int",
                    backdroid_ir::BinOp::Xor => "xor-int",
                    backdroid_ir::BinOp::Shl => "shl-int",
                    backdroid_ir::BinOp::Shr => "shr-int",
                    backdroid_ir::BinOp::Ushr => "ushr-int",
                    backdroid_ir::BinOp::Cmp => "cmp-long",
                };
                format!("{mnem} {dst}, {a}, {b}")
            }
            Insn::IfTest {
                mnemonic,
                a,
                b,
                target_units,
            } => format!("{mnemonic} {a}, {b}, {target_units:04x} // +{target_units:04x}"),
            Insn::Goto { target_units } => {
                format!("goto {target_units:04x} // +{target_units:04x}")
            }
            Insn::ReturnVoid => "return-void".into(),
            Insn::Return { reg, object } => {
                if *object {
                    format!("return-object {reg}")
                } else {
                    format!("return {reg}")
                }
            }
            Insn::Throw { reg } => format!("throw {reg}"),
        }
    }

    fn render_method(&mut self, class: &ClassDef, k: usize, m: &EncodedMethod) {
        let _ = writeln!(
            self.out,
            "    #{k:<15}: (in {})",
            class_descriptor(&class.name)
        );
        let _ = writeln!(self.out, "      name          : '{}'", m.sig.name());
        let _ = writeln!(self.out, "      type          : '{}'", proto_string(&m.sig));
        let _ = writeln!(
            self.out,
            "      access        : {}",
            access_suffix(m.access, m.sig.is_init())
        );
        let Some(code) = &m.code else {
            let _ = writeln!(self.out, "      code          : (none)");
            let _ = writeln!(self.out);
            return;
        };
        let _ = writeln!(self.out, "      code          -");
        let _ = writeln!(self.out, "      registers     : {}", code.registers);
        let _ = writeln!(
            self.out,
            "      ins           : {}",
            m.sig.params().len() + 1
        );
        let _ = writeln!(
            self.out,
            "      insns size    : {} 16-bit code units",
            code.total_units
        );
        let method_start = self.abs;
        let _ = writeln!(
            self.out,
            "{method_start:06x}:                                       |[{method_start:06x}] {}",
            banner_name(&m.sig)
        );
        for (i, insn) in code.insns.iter().enumerate() {
            let unit = code.offsets[i];
            let words = fake_words(insn, unit);
            let text = self.operand(insn);
            let abs = method_start + unit * 2;
            let _ = writeln!(self.out, "{abs:06x}: {words:<21} |{unit:04x}: {text}");
        }
        self.abs = method_start + code.total_units * 2 + 12;
        let _ = writeln!(self.out, "      catches       : (none)");
        let _ = writeln!(self.out, "      positions     : ");
        let _ = writeln!(self.out);
    }

    fn render_class(&mut self, idx: usize, class: &ClassDef) {
        let _ = writeln!(self.out, "Class #{idx}            -");
        let _ = writeln!(
            self.out,
            "  Class descriptor  : '{}'",
            class_descriptor(&class.name)
        );
        let _ = writeln!(
            self.out,
            "  Access flags      : {}",
            access_suffix(class.access, false)
        );
        if let Some(sup) = class.superclass {
            let _ = writeln!(
                self.out,
                "  Superclass        : '{}'",
                self.dex.type_desc(sup)
            );
        }
        let _ = writeln!(self.out, "  Interfaces        -");
        for (i, iface) in class.interfaces.iter().enumerate() {
            let desc = self.dex.type_desc(*iface).to_string();
            let _ = writeln!(self.out, "    #{i}              : '{desc}'");
        }
        let _ = writeln!(self.out, "  Static fields     -");
        for (i, f) in class
            .fields
            .iter()
            .filter(|f| f.access.is_static())
            .enumerate()
        {
            let _ = writeln!(
                self.out,
                "    #{i}              : (in {}) name:'{}' type:'{}'",
                class_descriptor(&class.name),
                f.sig.name(),
                f.sig.ty().descriptor()
            );
        }
        let _ = writeln!(self.out, "  Instance fields   -");
        for (i, f) in class
            .fields
            .iter()
            .filter(|f| !f.access.is_static())
            .enumerate()
        {
            let _ = writeln!(
                self.out,
                "    #{i}              : (in {}) name:'{}' type:'{}'",
                class_descriptor(&class.name),
                f.sig.name(),
                f.sig.ty().descriptor()
            );
        }
        let _ = writeln!(self.out, "  Direct methods    -");
        let directs: Vec<&EncodedMethod> = class.methods.iter().filter(|m| m.direct).collect();
        for (k, m) in directs.into_iter().enumerate() {
            self.render_method(class, k, m);
        }
        let _ = writeln!(self.out, "  Virtual methods   -");
        let virtuals: Vec<&EncodedMethod> = class.methods.iter().filter(|m| !m.direct).collect();
        for (k, m) in virtuals.into_iter().enumerate() {
            self.render_method(class, k, m);
        }
        let _ = writeln!(self.out);
    }
}

/// Disassembles a single dex file.
pub fn dump_dex(dex: &DexFile) -> String {
    let mut r = Renderer {
        dex,
        out: String::new(),
        abs: 0x1000,
    };
    for (idx, class) in dex.class_defs().iter().enumerate() {
        r.render_class(idx, class);
    }
    r.out
}

/// Disassembles all dex files of a (merged multidex) image into one
/// plaintext, as BackDroid's preprocessing step does (paper §III step 1).
pub fn dump_image(image: &DexImage) -> String {
    dump_image_with_marks(image).0
}

/// One class's extent within a [`dump_image`] plaintext: lines
/// `[line_start, line_end)` are exactly the class's rendered block
/// (banner through trailing blank line). The `Opened 'classesN.dex'`
/// header lines sit between marks and belong to no class.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassMark {
    /// The class rendered in this line range.
    pub name: ClassName,
    /// First line of the class block (0-based, inclusive).
    pub line_start: u32,
    /// One past the last line of the class block (exclusive).
    pub line_end: u32,
}

/// Like [`dump_image`], but also reports each class's line extent.
///
/// The plaintext is byte-identical to [`dump_image`]'s; the marks let
/// the incremental indexer attribute token scans to classes without
/// re-parsing the dump (class blocks can contain adversarial string
/// constants, so textual boundary sniffing is not trustworthy).
pub fn dump_image_with_marks(image: &DexImage) -> (String, Vec<ClassMark>) {
    let mut out = String::new();
    let mut marks = Vec::new();
    let mut line = 0u32;
    for (i, f) in image.files().iter().enumerate() {
        let _ = writeln!(
            out,
            "Opened 'classes{}.dex', DEX version '038'",
            if i == 0 {
                String::new()
            } else {
                (i + 1).to_string()
            }
        );
        line += 1;
        let mut r = Renderer {
            dex: f,
            out: String::new(),
            abs: 0x1000,
        };
        for (idx, class) in f.class_defs().iter().enumerate() {
            let before = r.out.len();
            r.render_class(idx, class);
            let rendered = r.out[before..].bytes().filter(|&b| b == b'\n').count() as u32;
            marks.push(ClassMark {
                name: class.name.clone(),
                line_start: line,
                line_end: line + rendered,
            });
            line += rendered;
        }
        out.push_str(&r.out);
    }
    (out, marks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassBuilder, InvokeExpr, MethodBuilder, Program};

    fn program_with_invoke() -> Program {
        let caller = ClassName::new("com.connectsdk.service.NetcastTVService$1");
        let callee = MethodSig::new(
            "com.connectsdk.service.netcast.NetcastHttpServer",
            "start",
            vec![],
            Type::Void,
        );
        let mut run = MethodBuilder::public(&caller, "run", vec![], Type::Void);
        let srv = run.new_object(
            "com.connectsdk.service.netcast.NetcastHttpServer",
            vec![],
            vec![],
        );
        run.invoke(InvokeExpr::call_virtual(callee, srv, vec![]));
        let mut p = Program::new();
        p.add_class(
            ClassBuilder::new(caller.as_str())
                .implements("java.lang.Runnable")
                .method(run.build())
                .build(),
        );
        p
    }

    #[test]
    fn method_ref_round_trip() {
        let sig = MethodSig::new(
            "com.a.B$1",
            "run",
            vec![Type::Int, Type::string(), Type::array(Type::Byte)],
            Type::object("java.lang.Object"),
        );
        let s = method_ref_string(&sig);
        assert_eq!(
            s,
            "Lcom/a/B$1;.run:(ILjava/lang/String;[B)Ljava/lang/Object;"
        );
        assert_eq!(parse_method_ref(&s), Some(sig));
    }

    #[test]
    fn field_ref_round_trip() {
        let sig = FieldSig::new("com.studiosol.util.NanoHTTPD", "myPort", Type::Int);
        let s = field_ref_string(&sig);
        assert_eq!(s, "Lcom/studiosol/util/NanoHTTPD;.myPort:I");
        assert_eq!(parse_field_ref(&s), Some(sig));
    }

    #[test]
    fn banner_flattens_inner_class_dollar() {
        let sig = MethodSig::new(
            "com.connectsdk.service.NetcastTVService$1",
            "run",
            vec![],
            Type::Void,
        );
        assert_eq!(
            banner_name(&sig),
            "com.connectsdk.service.NetcastTVService.1.run:()V"
        );
    }

    #[test]
    fn dump_contains_invoke_reference() {
        let p = program_with_invoke();
        let img = crate::model::DexImage::encode(&p);
        let text = dump_image(&img);
        assert!(text.contains(
            "invoke-virtual {v1}, Lcom/connectsdk/service/netcast/NetcastHttpServer;.start:()V"
        ));
        assert!(text.contains("Class descriptor  : 'Lcom/connectsdk/service/NetcastTVService$1;'"));
        assert!(text.contains("name          : 'run'"));
        assert!(text.contains("|[")); // banner line present
        assert!(text.contains("com.connectsdk.service.NetcastTVService.1.run:()V"));
    }

    #[test]
    fn dump_contains_new_instance_and_init() {
        let p = program_with_invoke();
        let img = crate::model::DexImage::encode(&p);
        let text = dump_image(&img);
        assert!(
            text.contains("new-instance v1, Lcom/connectsdk/service/netcast/NetcastHttpServer;")
        );
        assert!(text.contains(
            "invoke-direct {v1}, Lcom/connectsdk/service/netcast/NetcastHttpServer;.<init>:()V"
        ));
    }

    #[test]
    fn dump_is_deterministic() {
        let p = program_with_invoke();
        let a = dump_image(&crate::model::DexImage::encode(&p));
        let b = dump_image(&crate::model::DexImage::encode(&p));
        assert_eq!(a, b);
    }

    #[test]
    fn parse_method_ref_rejects_garbage() {
        assert_eq!(parse_method_ref("not a ref"), None);
        assert_eq!(parse_method_ref("Lcom/a/B;.name:()"), None);
        assert_eq!(parse_method_ref("Lcom/a/B;.name:(Q)V"), None);
    }
}
