//! Wire encoding of the manifest model, layered on
//! [`backdroid_ir::wire`] — one piece of the app-image snapshot format
//! the serving layer persists to disk.
//!
//! Encoding is deterministic: components are written in the manifest's
//! canonical (class-name) iteration order, so equal manifests produce
//! byte-identical encodings.

use crate::{Component, ComponentKind, Manifest};
use backdroid_ir::wire::{read_class_name, write_class_name, WireError, WireReader, WireWriter};

fn kind_tag(k: ComponentKind) -> u8 {
    match k {
        ComponentKind::Activity => 0,
        ComponentKind::Service => 1,
        ComponentKind::Receiver => 2,
        ComponentKind::Provider => 3,
    }
}

fn kind_from(tag: u8) -> Result<ComponentKind, WireError> {
    Ok(match tag {
        0 => ComponentKind::Activity,
        1 => ComponentKind::Service,
        2 => ComponentKind::Receiver,
        3 => ComponentKind::Provider,
        _ => {
            return Err(WireError::Malformed(format!(
                "unknown component kind tag {tag}"
            )))
        }
    })
}

/// Encodes a manifest.
pub fn write_manifest(w: &mut WireWriter, m: &Manifest) {
    w.put_str(m.package());
    w.put_len(m.components().count());
    for c in m.components() {
        w.put_u8(kind_tag(c.kind()));
        write_class_name(w, c.class());
        w.put_len(c.actions().len());
        for a in c.actions() {
            w.put_str(a);
        }
        w.put_bool(c.is_exported());
    }
}

/// Decodes a manifest.
pub fn read_manifest(r: &mut WireReader<'_>) -> Result<Manifest, WireError> {
    let package = r.get_str()?.to_string();
    let mut m = Manifest::new(package);
    let n = r.get_len(1)?;
    for _ in 0..n {
        let kind = kind_from(r.get_u8()?)?;
        let class = read_class_name(r)?;
        let mut c = Component::new(kind, class);
        let actions = r.get_len(1)?;
        for _ in 0..actions {
            c = c.with_action(r.get_str()?);
        }
        if r.get_bool()? {
            c = c.exported();
        }
        m.register(c);
    }
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_ir::{ClassName, MethodSig, Type};

    fn sample() -> Manifest {
        let mut m = Manifest::new("com.snap.demo");
        m.register(
            Component::new(ComponentKind::Activity, "com.snap.demo.Main")
                .with_action("android.intent.action.MAIN")
                .exported(),
        );
        m.register(Component::new(
            ComponentKind::Receiver,
            "com.snap.demo.Boot",
        ));
        m
    }

    #[test]
    fn manifest_round_trips_byte_identically() {
        let m = sample();
        let mut w = WireWriter::new();
        write_manifest(&mut w, &m);
        let bytes = w.into_bytes();
        let back = read_manifest(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(back.package(), m.package());
        assert_eq!(back.components().count(), 2);
        assert!(back.is_entry_component(&ClassName::new("com.snap.demo.Main")));
        assert!(back.is_entry_method(&MethodSig::new(
            "com.snap.demo.Boot",
            "onReceive",
            vec![],
            Type::Void
        )));
        assert_eq!(
            back.components_for_action("android.intent.action.MAIN")
                .len(),
            1
        );
        let mut w2 = WireWriter::new();
        write_manifest(&mut w2, &back);
        assert_eq!(bytes, w2.into_bytes());
    }

    #[test]
    fn truncations_and_bad_tags_fail_cleanly() {
        let mut w = WireWriter::new();
        write_manifest(&mut w, &sample());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                read_manifest(&mut WireReader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        assert!(matches!(kind_from(9), Err(WireError::Malformed(_))));
    }
}
