//! # backdroid-manifest
//!
//! The `AndroidManifest.xml` component model plus the Android lifecycle
//! *domain knowledge* BackDroid's special searches rely on (paper §IV-E).
//!
//! Android apps have no `main`: entry points are lifecycle handler methods
//! (`onCreate()`, `onStartCommand()`, `onReceive()`, …) of components
//! *registered in the manifest*. Whether a component is registered decides
//! whether a backtracked path is a true positive — the paper's §VI-C false
//! positives all stem from Amandroid accepting flows that originate in
//! unregistered (deactivated) components.
//!
//! ```
//! use backdroid_manifest::{Manifest, Component, ComponentKind};
//! use backdroid_ir::ClassName;
//!
//! let mut m = Manifest::new("com.example.app");
//! m.register(Component::new(ComponentKind::Activity, "com.example.app.MainActivity"));
//! assert!(m.is_entry_component(&ClassName::new("com.example.app.MainActivity")));
//! assert!(!m.is_entry_component(&ClassName::new("com.example.app.Hidden")));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use backdroid_ir::{ClassName, MethodSig, Type};
use std::collections::BTreeMap;

pub mod snapshot;

/// The four Android component kinds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ComponentKind {
    /// `<activity>` — UI screens.
    Activity,
    /// `<service>` — background work.
    Service,
    /// `<receiver>` — broadcast receivers.
    Receiver,
    /// `<provider>` — content providers.
    Provider,
}

impl ComponentKind {
    /// The lifecycle handler method names of this component kind, in their
    /// canonical invocation order. This is the §IV-E domain-knowledge
    /// table: "since there are only four kinds of Android components, we
    /// can simply use domain knowledge to handle all lifecycle handlers."
    pub fn lifecycle_handlers(self) -> &'static [&'static str] {
        match self {
            ComponentKind::Activity => &[
                "onCreate",
                "onStart",
                "onRestoreInstanceState",
                "onResume",
                "onPause",
                "onSaveInstanceState",
                "onStop",
                "onRestart",
                "onDestroy",
            ],
            ComponentKind::Service => &[
                "onCreate",
                "onStartCommand",
                "onStart",
                "onBind",
                "onUnbind",
                "onRebind",
                "onDestroy",
            ],
            ComponentKind::Receiver => &["onReceive"],
            ComponentKind::Provider => {
                &["onCreate", "query", "insert", "update", "delete", "getType"]
            }
        }
    }

    /// Lifecycle handlers that may run *before* `handler`, per the
    /// component lifecycle state machine. Used by the special lifecycle
    /// search to keep backtracking when the dataflow has not finished at
    /// the reached handler (§IV-E).
    pub fn predecessors_of(self, handler: &str) -> Vec<&'static str> {
        let order = self.lifecycle_handlers();
        match order.iter().position(|h| *h == handler) {
            Some(pos) => order[..pos].to_vec(),
            None => Vec::new(),
        }
    }

    /// The platform base class of this component kind.
    pub fn base_class(self) -> ClassName {
        ClassName::new(match self {
            ComponentKind::Activity => "android.app.Activity",
            ComponentKind::Service => "android.app.Service",
            ComponentKind::Receiver => "android.content.BroadcastReceiver",
            ComponentKind::Provider => "android.content.ContentProvider",
        })
    }

    /// The ICC launch APIs that target this component kind, used by the
    /// two-time ICC search (§IV-D) to pair ICC calls with parameters.
    pub fn icc_apis(self) -> &'static [&'static str] {
        match self {
            ComponentKind::Activity => &["startActivity", "startActivityForResult"],
            ComponentKind::Service => &["startService", "bindService", "startForegroundService"],
            ComponentKind::Receiver => &["sendBroadcast", "sendOrderedBroadcast"],
            ComponentKind::Provider => &["query", "insert", "update", "delete"],
        }
    }
}

/// One registered (or intentionally unregistered, for FP-shape workloads)
/// component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Component {
    kind: ComponentKind,
    class: ClassName,
    actions: Vec<String>,
    exported: bool,
}

impl Component {
    /// Creates a component with no intent filter.
    pub fn new(kind: ComponentKind, class: impl Into<ClassName>) -> Self {
        Component {
            kind,
            class: class.into(),
            actions: Vec::new(),
            exported: false,
        }
    }

    /// Adds an intent-filter action (implicit-ICC target).
    pub fn with_action(mut self, action: impl Into<String>) -> Self {
        self.actions.push(action.into());
        self
    }

    /// Marks the component exported.
    pub fn exported(mut self) -> Self {
        self.exported = true;
        self
    }

    /// The component kind.
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The implementing class.
    pub fn class(&self) -> &ClassName {
        &self.class
    }

    /// Declared intent-filter actions.
    pub fn actions(&self) -> &[String] {
        &self.actions
    }

    /// Whether the component is exported.
    pub fn is_exported(&self) -> bool {
        self.exported
    }

    /// The entry-point method signatures of this component: each lifecycle
    /// handler as a `void` method (parameter lists are modeled as empty —
    /// the analyses match handlers by name, as the paper's search does).
    pub fn entry_methods(&self) -> Vec<MethodSig> {
        self.kind
            .lifecycle_handlers()
            .iter()
            .map(|h| MethodSig::new(self.class.clone(), *h, vec![], Type::Void))
            .collect()
    }
}

/// The parsed manifest of one app.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Manifest {
    package: String,
    components: BTreeMap<ClassName, Component>,
}

impl Manifest {
    /// Creates an empty manifest for `package`.
    pub fn new(package: impl Into<String>) -> Self {
        Manifest {
            package: package.into(),
            components: BTreeMap::new(),
        }
    }

    /// The application package name.
    pub fn package(&self) -> &str {
        &self.package
    }

    /// Registers a component.
    pub fn register(&mut self, component: Component) {
        self.components.insert(component.class().clone(), component);
    }

    /// All registered components in deterministic order.
    pub fn components(&self) -> impl Iterator<Item = &Component> + '_ {
        self.components.values()
    }

    /// The registered component implemented by `class`, if any.
    pub fn component(&self, class: &ClassName) -> Option<&Component> {
        self.components.get(class)
    }

    /// Whether `class` is a registered entry component. Unregistered
    /// components are dead code from the OS's point of view — flows
    /// starting there are the paper's Amandroid false-positive shape.
    pub fn is_entry_component(&self, class: &ClassName) -> bool {
        self.components.contains_key(class)
    }

    /// Whether `sig` is an entry-point lifecycle handler of a registered
    /// component (matched by class + handler name).
    pub fn is_entry_method(&self, sig: &MethodSig) -> bool {
        self.components
            .get(sig.class())
            .is_some_and(|c| c.kind().lifecycle_handlers().contains(&sig.name()))
    }

    /// Components whose intent filter contains `action` — the implicit-ICC
    /// resolution used by the two-time ICC search (§IV-D).
    pub fn components_for_action(&self, action: &str) -> Vec<&Component> {
        self.components
            .values()
            .filter(|c| c.actions().iter().any(|a| a == action))
            .collect()
    }

    /// All entry-point method signatures of the app.
    pub fn entry_methods(&self) -> Vec<MethodSig> {
        self.components
            .values()
            .flat_map(Component::entry_methods)
            .collect()
    }
}

/// Asynchronous-flow domain knowledge: the platform "registration" APIs
/// whose callee object later receives an implicit callback. The advanced
/// search does *not* rely on this table to find ending methods (it uses
/// interface-type matching, §IV-B); the table exists for the *baseline*
/// whole-app analysis, which (like Amandroid/FlowDroid) hard-codes these
/// edges — and misses the ones outside the table, reproducing the paper's
/// "unrobust handling of certain implicit flows" (§VI-C).
#[derive(Clone, Debug)]
pub struct AsyncFlowTable {
    /// (registration API name, callback interface, callback method name)
    entries: Vec<(&'static str, &'static str, &'static str)>,
}

impl Default for AsyncFlowTable {
    fn default() -> Self {
        Self::baseline()
    }
}

impl AsyncFlowTable {
    /// The conventional table used by prior work: `Thread.start → run`
    /// and a few friends. Deliberately *excludes* `Executor.execute`
    /// and `AsyncTask.execute`, the flows the paper shows Amandroid
    /// missing.
    pub fn baseline() -> Self {
        AsyncFlowTable {
            entries: vec![
                ("start", "java.lang.Runnable", "run"),
                ("post", "java.lang.Runnable", "run"),
                ("postDelayed", "java.lang.Runnable", "run"),
            ],
        }
    }

    /// An extended table that also covers the flows Amandroid misses;
    /// enabling it on the baseline models a "robust" whole-app tool.
    pub fn robust() -> Self {
        let mut t = Self::baseline();
        t.entries.extend([
            ("execute", "java.lang.Runnable", "run"),
            ("submit", "java.lang.Runnable", "run"),
            ("execute", "android.os.AsyncTask", "doInBackground"),
            (
                "setOnClickListener",
                "android.view.View$OnClickListener",
                "onClick",
            ),
            ("schedule", "java.util.TimerTask", "run"),
        ]);
        t
    }

    /// Callback edges for a registration API `name`: the (interface,
    /// callback method) pairs it triggers.
    pub fn callbacks_of(&self, api_name: &str) -> Vec<(ClassName, &'static str)> {
        self.entries
            .iter()
            .filter(|(n, _, _)| *n == api_name)
            .map(|(_, iface, cb)| (ClassName::new(*iface), *cb))
            .collect()
    }

    /// Whether any entry registers callbacks via `api_name`.
    pub fn is_registration_api(&self, api_name: &str) -> bool {
        self.entries.iter().any(|(n, _, _)| *n == api_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_tables() {
        assert!(ComponentKind::Activity
            .lifecycle_handlers()
            .contains(&"onResume"));
        assert_eq!(ComponentKind::Receiver.lifecycle_handlers(), &["onReceive"]);
        let preds = ComponentKind::Activity.predecessors_of("onResume");
        assert!(preds.contains(&"onCreate"));
        assert!(preds.contains(&"onStart"));
        assert!(!preds.contains(&"onPause"));
        assert!(ComponentKind::Activity
            .predecessors_of("onCreate")
            .is_empty());
        assert!(ComponentKind::Activity
            .predecessors_of("nonexistent")
            .is_empty());
    }

    #[test]
    fn component_entry_methods() {
        let c = Component::new(ComponentKind::Service, "com.a.SyncService");
        let entries = c.entry_methods();
        assert!(entries
            .iter()
            .any(|m| m.name() == "onStartCommand" && m.class().as_str() == "com.a.SyncService"));
    }

    #[test]
    fn manifest_registration() {
        let mut m = Manifest::new("com.a");
        m.register(
            Component::new(ComponentKind::Activity, "com.a.Main")
                .with_action("android.intent.action.MAIN"),
        );
        assert!(m.is_entry_component(&ClassName::new("com.a.Main")));
        assert!(!m.is_entry_component(&ClassName::new("com.a.Other")));
        assert!(m.is_entry_method(&MethodSig::new(
            "com.a.Main",
            "onCreate",
            vec![],
            Type::Void
        )));
        assert!(!m.is_entry_method(&MethodSig::new("com.a.Main", "helper", vec![], Type::Void)));
        assert_eq!(
            m.components_for_action("android.intent.action.MAIN").len(),
            1
        );
        assert!(m.components_for_action("missing.ACTION").is_empty());
    }

    #[test]
    fn entry_methods_cover_all_components() {
        let mut m = Manifest::new("com.a");
        m.register(Component::new(ComponentKind::Activity, "com.a.Main"));
        m.register(Component::new(ComponentKind::Receiver, "com.a.Boot"));
        let entries = m.entry_methods();
        assert!(entries.iter().any(|e| e.name() == "onReceive"));
        assert!(entries.iter().any(|e| e.name() == "onCreate"));
    }

    #[test]
    fn async_tables_differ_on_executor() {
        let base = AsyncFlowTable::baseline();
        let robust = AsyncFlowTable::robust();
        assert!(base.is_registration_api("start"));
        assert!(!base.is_registration_api("execute"));
        assert!(robust.is_registration_api("execute"));
        let cbs = robust.callbacks_of("setOnClickListener");
        assert_eq!(cbs.len(), 1);
        assert_eq!(cbs[0].1, "onClick");
    }

    #[test]
    fn icc_apis_per_kind() {
        assert!(ComponentKind::Service.icc_apis().contains(&"startService"));
        assert!(ComponentKind::Activity
            .icc_apis()
            .contains(&"startActivity"));
    }
}
