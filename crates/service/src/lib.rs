//! # backdroid-service
//!
//! The serving layer: BackDroid's value proposition (DSN 2021) is that
//! *targeted* analysis is cheap enough to answer security questions on
//! demand — this crate turns the owned, `Arc`-shareable
//! [`AppArtifacts`](backdroid_core::AppArtifacts) session of the core
//! crate into a resident **multi-app analysis service**:
//!
//! * [`AppStore`] keeps many app images resident under a **byte
//!   budget** with LRU eviction, and loads cold apps **single-flight**
//!   (N concurrent requests build the image exactly once — the same
//!   pattern as the search engine's command cache, one layer up).
//! * [`Service`] answers full analyses, per-detector queries, and
//!   batched multi-app requests against the store, through the existing
//!   `Backdroid::analyze_artifacts` + `intra_threads` machinery, with
//!   atomically aggregated [`ServiceStats`].
//! * [`proto`] is the line-delimited JSON protocol the `backdroid-serve`
//!   binary speaks on stdin/stdout — deterministic responses that CI
//!   diffs byte-for-byte across worker counts, backends, and budgets.
//! * [`shard`] scales that out: a [`ShardPool`] of N single-service
//!   shards behind a consistent-hash router, with bounded queues
//!   (backpressure), per-request deadlines, and kill/restart that spills
//!   through the snapshot tier and comes back disk-warm.
//! * [`transport`] is the length-framed binary socket protocol
//!   (`tcp:`/`unix:` endpoints) `backdroid-serve --listen`/`--connect`
//!   speak — one JSONL line per frame, responses 1:1 in request order.
//! * **Observability** — every layer publishes into a
//!   [`backdroid_obs::MetricsRegistry`] (store tiers, request counters,
//!   per-tier latency and phase histograms, pool queue waits), exposed
//!   over the wire by the `metrics` op, and the pool can record
//!   per-request span traces whose normalized export replays
//!   byte-identically at any shard count.
//!
//! Responses are a pure function of (app, requested detectors): the
//! store changes *where* artifacts come from, never what analysis
//! reports.
//!
//! ```
//! use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
//! use backdroid_core::AppArtifacts;
//! use backdroid_service::{Fetch, Service, ServiceConfig};
//!
//! // A service over a custom loader (any app id ending in a cipher app).
//! let service = Service::new(ServiceConfig::default(), |id: &str| {
//!     let app = AppSpec::named(format!("com.demo.{id}"))
//!         .with_scenario(Scenario::new(Mechanism::DirectEntry, SinkKind::Cipher, true))
//!         .with_filler(4, 3, 4)
//!         .generate();
//!     Ok(AppArtifacts::new(app.program, app.manifest))
//! });
//!
//! let cold = service.analyze_app("alpha").unwrap();
//! let warm = service.analyze_app("alpha").unwrap();
//! assert_eq!(cold.fetch, Fetch::Miss);
//! assert_eq!(warm.fetch, Fetch::Hit);
//! assert_eq!(cold.report.sink_reports, warm.report.sink_reports);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proto;
pub mod service;
pub mod shard;
pub mod store;
pub mod transport;

pub use proto::{Op, Reply};
pub use service::{
    AppAnalysis, PutVersionOutcome, Service, ServiceConfig, ServiceError, ServiceStats,
};
pub use shard::{PoolStats, Responder, ShardPool, ShardPoolConfig};
pub use store::{AppStore, DiskTier, Fetch, StoreStats};
pub use transport::{Endpoint, FrameReader, OrderedEmitter};
