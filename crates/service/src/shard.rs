//! The sharded serving topology: N shard workers, each owning one
//! [`Service`] (and therefore one [`crate::AppStore`]), behind a router
//! that consistent-hashes app ids so **every app image is resident on
//! exactly one shard** — the market-scale layout where no single
//! process can hold the whole store.
//!
//! * **Routing** — `fnv1a64(app_id) % shards` (the same hash the
//!   snapshot checksums use), probing forward past dead shards; batch
//!   requests route by their first app.
//! * **Admission control** — each shard has a bounded queue;
//!   [`ShardPool::submit_line`] blocks when the target queue is full
//!   (backpressure to the reader), never drops.
//! * **Deadlines** — a request carrying `"deadline_ms"` that is still
//!   queued when its deadline passes is answered with a deterministic
//!   error instead of being analyzed.
//! * **Crash + restart** — [`ShardPool::kill_shard`] takes a shard
//!   down: its queue is re-routed to surviving shards, its in-flight
//!   work completes (so no response is ever lost or duplicated), its
//!   counters are folded into the pool's retired total, and its memory
//!   tier is dropped. [`ShardPool::restart_shard`] brings it back with
//!   a fresh [`Service`] over the **shared snapshot directory**, so the
//!   restarted shard is disk-warm (PR-5's tier) instead of re-parsing.
//!
//! Responses stay a pure function of (app, requested sinks), so a
//! sharded replay — at any shard count, across a kill/restart — is
//! byte-identical to the single-process `--direct` golden. The
//! `tests/shard_equivalence.rs` and `tests/shard_fault_injection.rs`
//! tiers enforce exactly that.

use crate::proto::{parse_json, parse_request, Json, Op, Reply, Request};
use crate::service::{Service, ServiceStats};
use backdroid_ir::wire::fnv1a64;
use backdroid_obs::{Counter, Histogram, MetricsRegistry, RegistrySnapshot, TraceBuilder, Tracer};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Delivers one completed response: the submission sequence number and
/// the rendered line (`None` = nothing to emit — blank input, admin
/// ops). Shared by every job of one input stream, typically an
/// [`crate::transport::OrderedEmitter`] closure.
pub type Responder = Arc<dyn Fn(u64, Option<String>) + Send + Sync>;

/// Builds the `Service` for one (re)started shard. Every shard gets the
/// same configuration — in particular the same snapshot directory, which
/// is what makes restarts disk-warm.
pub type ShardFactory = dyn Fn(usize) -> Service + Send + Sync;

/// Shard-pool configuration.
#[derive(Clone, Debug)]
pub struct ShardPoolConfig {
    /// Number of shards (each owns one `Service` + `AppStore`).
    pub shards: usize,
    /// Worker threads per shard draining its queue.
    pub workers_per_shard: usize,
    /// Bounded per-shard queue depth; submission blocks when full.
    pub queue_capacity: usize,
    /// Span-ring capacity for per-request phase tracing; `0` (the
    /// default) disables tracing entirely. See [`backdroid_obs::Tracer`]
    /// for the replay-diff contract.
    pub trace_capacity: usize,
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        ShardPoolConfig {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 64,
            trace_capacity: 0,
        }
    }
}

/// Pool-level counters (everything the per-shard [`ServiceStats`] can't
/// see): routing, admission, and lifecycle events.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Configured shard count.
    pub shards: u64,
    /// Shards currently alive.
    pub alive: u64,
    /// Jobs enqueued on a non-primary shard because the primary was
    /// dead (includes queue re-routes after a kill).
    pub rerouted: u64,
    /// Requests answered with a deterministic deadline error because
    /// they were still queued when their deadline passed.
    pub deadline_expired: u64,
    /// Requests that found no live shard at all.
    pub no_shard_errors: u64,
    /// `kill_shard` calls that took a live shard down.
    pub kills: u64,
    /// `restart_shard` calls that brought a dead shard back.
    pub restarts: u64,
}

/// One queued request.
struct Job {
    seq: u64,
    req: Request,
    respond: Responder,
    deadline: Option<Instant>,
    /// When the job was first admitted. Survives re-routing after a
    /// kill, so the measured queue wait covers time spent on a dead
    /// shard's queue too.
    enqueued: Instant,
}

struct ShardState {
    queue: VecDeque<Job>,
    /// The shard's service; `None` exactly while the shard is dead.
    service: Option<Arc<Service>>,
    alive: bool,
    in_flight: usize,
    /// Apps with a job currently executing. Workers skip queued jobs
    /// whose apps appear here (or earlier in the queue), so same-app
    /// requests run one at a time in submission order — without that,
    /// a `put_version` could race the requests around it and a multi-
    /// worker replay would not be byte-identical to the direct golden.
    busy: HashSet<String>,
    /// Worker threads currently attached to this shard.
    workers: usize,
}

struct Shard {
    state: Mutex<ShardState>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Signalled when `in_flight`/`workers` drop or the queue empties.
    settled: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().expect("shard poisoned")
    }
}

struct PoolInner {
    shards: Vec<Shard>,
    factory: Box<ShardFactory>,
    queue_capacity: usize,
    workers_per_shard: usize,
    running: AtomicBool,
    /// Pool-level registry: routing/admission/lifecycle counters plus
    /// the queue-wait histogram. Folded into the aggregate `metrics`
    /// view alongside the shards' own registries.
    registry: Arc<MetricsRegistry>,
    rerouted: Counter,
    deadline_expired: Counter,
    no_shard_errors: Counter,
    kills: Counter,
    restarts: Counter,
    /// Time jobs sat queued before a worker picked them up, in µs.
    queue_wait_us: Histogram,
    /// Optional per-request span ring (`trace_capacity > 0`).
    tracer: Option<Arc<Tracer>>,
    /// Registry snapshots folded in from killed shards, so aggregate
    /// counters stay monotonic across restarts.
    retired: Mutex<RegistrySnapshot>,
}

/// The sharded service pool. `submit_line` may be called from any
/// number of reader threads; responses are delivered through each job's
/// [`Responder`] from whichever shard worker completed it.
pub struct ShardPool {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("pool", &self.pool_stats())
            .finish()
    }
}

/// Runs one already-parsed request against a service and renders the
/// response line. `None` means the op produces no output: the admin ops
/// (`kill_shard` / `restart_shard`), which are pool-level and a no-op
/// on a plain service — keeping them silent means a trace spliced with
/// admin lines still diffs byte-for-byte against an unsharded golden.
pub fn execute_request(service: &Service, req: &Request) -> Option<String> {
    execute_request_traced(service, req, None)
}

/// The fetch tier as a trace attribute value.
fn fetch_name(fetch: crate::store::Fetch) -> &'static str {
    match fetch {
        crate::store::Fetch::Hit => "hit",
        crate::store::Fetch::Miss => "miss",
        crate::store::Fetch::Disk => "disk",
        crate::store::Fetch::Coalesced => "coalesced",
    }
}

/// Opens the synthesized phase children under `parent` for one
/// completed analysis: `fetch` (which tier served the image) and the
/// pipeline phases with their measured durations. Everything on them is
/// a **wall** attribute — phase durations and tiers are facts of one
/// run — so the normalized export keeps only the span skeleton, which
/// is a pure function of the workload.
fn open_analysis_spans(tb: &mut TraceBuilder, parent: u32, a: &crate::service::AppAnalysis) {
    let fetch = tb.open(Some(parent), "fetch");
    tb.wall_attr(fetch, "tier", fetch_name(a.fetch));
    tb.close(fetch);
    for (name, ns) in [
        ("locate", a.report.phases.locate_ns),
        ("slice", a.report.phases.slice_ns),
        ("verdict", a.report.phases.verdict_ns),
    ] {
        let s = tb.open(Some(parent), name);
        tb.wall_attr(s, "us", &(ns / 1_000).to_string());
        tb.close(s);
    }
    let probe = tb.open(Some(parent), "search");
    tb.wall_attr(
        probe,
        "commands",
        &a.report.cache_stats.commands.to_string(),
    );
    tb.wall_attr(probe, "hits", &a.report.cache_stats.hits.to_string());
    tb.close(probe);
}

/// [`execute_request`] plus optional span recording: when `tb` is
/// given, the caller has opened the root `request` span (id `0`) and
/// this runs the op inside an `exec` child, attaching per-analysis
/// phase children. Span structure and deterministic attrs depend only
/// on the request, never on timing or topology.
pub fn execute_request_traced(
    service: &Service,
    req: &Request,
    mut tb: Option<&mut TraceBuilder>,
) -> Option<String> {
    let exec = tb.as_deref_mut().map(|tb| tb.open(Some(0), "exec"));
    let reply = match &req.op {
        Op::Analyze { app } => match service.analyze_app(app) {
            Ok(a) => {
                if let (Some(tb), Some(exec)) = (tb.as_deref_mut(), exec) {
                    open_analysis_spans(tb, exec, &a);
                }
                Reply::Analysis {
                    id: req.id,
                    op: "analyze",
                    analysis: a,
                }
            }
            Err(e) => Reply::Error {
                id: req.id,
                message: e.to_string(),
            },
        },
        Op::AnalyzeDelta { app } => match service.analyze_delta(app) {
            Ok(a) => {
                if let (Some(tb), Some(exec)) = (tb.as_deref_mut(), exec) {
                    open_analysis_spans(tb, exec, &a);
                }
                Reply::Analysis {
                    id: req.id,
                    op: "analyze_delta",
                    analysis: a,
                }
            }
            Err(e) => Reply::Error {
                id: req.id,
                message: e.to_string(),
            },
        },
        Op::PutVersion { app, seed } => match service.put_version(app, *seed) {
            Ok(outcome) => Reply::PutVersion {
                id: req.id,
                outcome,
            },
            Err(e) => Reply::Error {
                id: req.id,
                message: e.to_string(),
            },
        },
        Op::Query { app, detectors } => match service.query_detectors(app, detectors) {
            Ok(a) => {
                if let (Some(tb), Some(exec)) = (tb.as_deref_mut(), exec) {
                    open_analysis_spans(tb, exec, &a);
                }
                Reply::Analysis {
                    id: req.id,
                    op: "query",
                    analysis: a,
                }
            }
            Err(e) => Reply::Error {
                id: req.id,
                message: e.to_string(),
            },
        },
        Op::Batch { apps } => {
            let results = service.analyze_batch(apps);
            if let (Some(tb), Some(exec)) = (tb.as_deref_mut(), exec) {
                for (i, result) in results.iter().enumerate() {
                    let item = tb.open(Some(exec), "item");
                    tb.attr(item, "index", &i.to_string());
                    if let Ok(a) = result {
                        open_analysis_spans(tb, item, a);
                    }
                    tb.close(item);
                }
            }
            Reply::Batch {
                id: req.id,
                items: results,
            }
        }
        Op::Stats => Reply::Stats {
            id: req.id,
            stats: service.stats(),
        },
        Op::Metrics => {
            let snap = service.metrics().snapshot();
            Reply::Metrics {
                id: req.id,
                aggregate: snap.clone(),
                shards: vec![Some(snap)],
            }
        }
        Op::KillShard { .. } | Op::RestartShard { .. } => Reply::Silent,
    };
    if matches!(reply, Reply::Silent) {
        // Silent ops emit nothing, so the `exec`/`emit` spans are not
        // recorded either — a trace spliced with admin lines still diffs
        // byte-for-byte against an unsharded golden.
        return None;
    }
    if let (Some(tb), Some(exec)) = (tb, exec) {
        tb.close(exec);
        let emit = tb.open(Some(0), "emit");
        tb.close(emit);
    }
    reply.encode()
}

impl ShardPool {
    /// Creates the pool and spawns `shards × workers_per_shard` workers.
    /// The factory builds each shard's `Service` — called again on every
    /// [`ShardPool::restart_shard`].
    pub fn new(
        cfg: ShardPoolConfig,
        factory: impl Fn(usize) -> Service + Send + Sync + 'static,
    ) -> Self {
        let shards = cfg.shards.max(1);
        let workers_per_shard = cfg.workers_per_shard.max(1);
        let registry = Arc::new(MetricsRegistry::new());
        let inner = Arc::new(PoolInner {
            shards: (0..shards)
                .map(|i| Shard {
                    state: Mutex::new(ShardState {
                        queue: VecDeque::new(),
                        service: Some(Arc::new(factory(i))),
                        alive: true,
                        in_flight: 0,
                        busy: HashSet::new(),
                        workers: workers_per_shard,
                    }),
                    not_empty: Condvar::new(),
                    not_full: Condvar::new(),
                    settled: Condvar::new(),
                })
                .collect(),
            factory: Box::new(factory),
            queue_capacity: cfg.queue_capacity.max(1),
            workers_per_shard,
            running: AtomicBool::new(true),
            rerouted: registry.counter("pool_rerouted_total"),
            deadline_expired: registry.counter("pool_deadline_expired_total"),
            no_shard_errors: registry.counter("pool_no_shard_errors_total"),
            kills: registry.counter("pool_kills_total"),
            restarts: registry.counter("pool_restarts_total"),
            queue_wait_us: registry.histogram("pool_queue_wait_us"),
            registry,
            tracer: (cfg.trace_capacity > 0)
                .then(|| Arc::new(Tracer::with_capacity(cfg.trace_capacity))),
            retired: Mutex::new(RegistrySnapshot::default()),
        });
        let pool = ShardPool {
            inner,
            handles: Mutex::new(Vec::new()),
        };
        for i in 0..shards {
            pool.spawn_workers(i);
        }
        pool
    }

    /// Number of configured shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard `app_id` hashes to — where its image is resident while
    /// that shard is alive.
    pub fn route(&self, app_id: &str) -> usize {
        (fnv1a64(app_id.as_bytes()) % self.inner.shards.len() as u64) as usize
    }

    /// Submits one input line. Parse errors, `stats`, and the admin ops
    /// are answered on the calling thread; per-app jobs (analyze, query,
    /// batch, put_version, analyze_delta) are routed to their shard's
    /// queue (blocking while it is full). Every submission produces
    /// exactly one `respond(seq, …)` call.
    pub fn submit_line(&self, seq: u64, line: &str, respond: &Responder) {
        let line = line.trim();
        if line.is_empty() {
            respond(seq, None);
            return;
        }
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                let id = parse_json(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_u64))
                    .unwrap_or(0);
                let reply = Reply::Error { id, message: e };
                respond(seq, reply.encode());
                return;
            }
        };
        match &req.op {
            Op::Stats => {
                let reply = Reply::Stats {
                    id: req.id,
                    stats: self.stats(),
                };
                respond(seq, reply.encode());
            }
            Op::Metrics => {
                let reply = Reply::Metrics {
                    id: req.id,
                    aggregate: self.metrics(),
                    shards: self.shard_metrics(),
                };
                respond(seq, reply.encode());
            }
            &Op::KillShard { shard } => {
                self.kill_shard(shard as usize);
                respond(seq, Reply::Silent.encode());
            }
            &Op::RestartShard { shard } => {
                self.restart_shard(shard as usize);
                respond(seq, Reply::Silent.encode());
            }
            Op::Analyze { .. }
            | Op::AnalyzeDelta { .. }
            | Op::PutVersion { .. }
            | Op::Query { .. }
            | Op::Batch { .. } => {
                let primary = primary_app(&req.op);
                let deadline = req
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                self.route_job(
                    self.route(&primary),
                    Job {
                        seq,
                        req,
                        respond: Arc::clone(respond),
                        deadline,
                        enqueued: Instant::now(),
                    },
                );
            }
        }
    }

    /// Enqueues `job` on `primary`, probing forward past dead shards.
    fn route_job(&self, primary: usize, job: Job) {
        let n = self.inner.shards.len();
        let mut job = job;
        for k in 0..n {
            let idx = (primary + k) % n;
            match self.try_enqueue(idx, job) {
                Ok(()) => {
                    if k > 0 {
                        self.inner.rerouted.inc();
                    }
                    return;
                }
                Err(returned) => job = returned,
            }
        }
        self.inner.no_shard_errors.inc();
        let reply = Reply::Error {
            id: job.req.id,
            message: "no shard available".to_string(),
        };
        (job.respond)(job.seq, reply.encode());
    }

    /// Blocking bounded put; `Err(job)` if the shard is (or went) dead.
    // The Err is the caller's own Job handed back for re-routing, not
    // an error payload — boxing it would cost an allocation per submit.
    #[allow(clippy::result_large_err)]
    fn try_enqueue(&self, idx: usize, job: Job) -> Result<(), Job> {
        let shard = &self.inner.shards[idx];
        let mut state = shard.lock();
        loop {
            if !state.alive || !self.inner.running.load(Ordering::Relaxed) {
                return Err(job);
            }
            if state.queue.len() < self.inner.queue_capacity {
                state.queue.push_back(job);
                shard.not_empty.notify_one();
                return Ok(());
            }
            state = shard.not_full.wait(state).expect("shard poisoned");
        }
    }

    /// Takes shard `idx` down: stops its workers (the current in-flight
    /// request completes and is answered — nothing is lost), re-routes
    /// everything still queued, folds its counters into the retired
    /// total, and drops its service (memory tier gone; its snapshots
    /// stay on disk). Returns `false` if the index is out of range or
    /// the shard was already dead.
    pub fn kill_shard(&self, idx: usize) -> bool {
        let Some(shard) = self.inner.shards.get(idx) else {
            return false;
        };
        let stranded = {
            let mut state = shard.lock();
            if !state.alive {
                return false;
            }
            state.alive = false;
            shard.not_empty.notify_all();
            shard.not_full.notify_all();
            std::mem::take(&mut state.queue)
        };
        self.inner.kills.inc();
        // Wait for the workers to finish their in-flight requests and
        // detach, then retire the service's registry snapshot and drop
        // it.
        {
            let mut state = shard.lock();
            while state.workers > 0 || state.in_flight > 0 {
                state = shard.settled.wait(state).expect("shard poisoned");
            }
            let service = state.service.take().expect("dead shard kept a service");
            let mut retired = self.inner.retired.lock().expect("retired stats poisoned");
            retired.absorb(&service.metrics().snapshot());
        }
        // Re-route the stranded queue through the normal router, which
        // now probes past this shard — each displaced job is counted as
        // rerouted by `route_job`'s probe.
        for job in stranded {
            let primary = primary_app(&job.req.op);
            self.route_job(self.route(&primary), job);
        }
        true
    }

    /// Brings a dead shard back with a fresh service from the factory —
    /// over the shared snapshot directory, so first touches are disk
    /// restores, not re-parses. Returns `false` if the index is out of
    /// range or the shard is already alive.
    pub fn restart_shard(&self, idx: usize) -> bool {
        let Some(shard) = self.inner.shards.get(idx) else {
            return false;
        };
        {
            let mut state = shard.lock();
            if state.alive {
                return false;
            }
            state.service = Some(Arc::new((self.inner.factory)(idx)));
            state.alive = true;
            state.workers = self.inner.workers_per_shard;
        }
        self.inner.restarts.inc();
        self.spawn_workers(idx);
        true
    }

    /// Blocks until every live shard's queue is empty and nothing is in
    /// flight — all submitted responses delivered.
    pub fn drain(&self) {
        for shard in &self.inner.shards {
            let mut state = shard.lock();
            while state.alive && (!state.queue.is_empty() || state.in_flight > 0) {
                state = shard.settled.wait(state).expect("shard poisoned");
            }
        }
    }

    /// Aggregated service + store counters: the retired totals of every
    /// killed shard plus the live shards' current counters — what the
    /// JSONL `stats` op renders, so tier hit rates stay meaningful
    /// across the whole pool. Decoded from the aggregate registry
    /// snapshot, the same single path the `metrics` op renders.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats::from_metrics(&self.metrics())
    }

    /// The fleet-wide aggregate registry snapshot: retired (killed)
    /// shards, every live shard, and the pool's own `pool_*` counters
    /// and queue-wait histogram, folded with
    /// [`RegistrySnapshot::absorb`].
    pub fn metrics(&self) -> RegistrySnapshot {
        let mut agg = self
            .inner
            .retired
            .lock()
            .expect("retired stats poisoned")
            .clone();
        for shard in &self.inner.shards {
            if let Some(service) = &shard.lock().service {
                agg.absorb(&service.metrics().snapshot());
            }
        }
        agg.absorb(&self.inner.registry.snapshot());
        agg
    }

    /// Per-shard registry snapshots (`None` while a shard is dead) —
    /// the `metrics` op's `"shards"` array.
    pub fn shard_metrics(&self) -> Vec<Option<RegistrySnapshot>> {
        self.inner
            .shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .service
                    .as_ref()
                    .map(|s| s.metrics().snapshot())
            })
            .collect()
    }

    /// The span ring, when the pool was configured with
    /// `trace_capacity > 0`.
    pub fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.inner.tracer.as_ref()
    }

    /// One live shard's own counters (`None` while it is dead) — the
    /// per-shard view `service_throughput --shards` reports.
    pub fn shard_stats(&self, idx: usize) -> Option<ServiceStats> {
        self.inner
            .shards
            .get(idx)?
            .lock()
            .service
            .as_ref()
            .map(|s| s.stats())
    }

    /// Routing/admission/lifecycle counters, read back off the pool's
    /// registry handles.
    pub fn pool_stats(&self) -> PoolStats {
        let inner = &self.inner;
        PoolStats {
            shards: inner.shards.len() as u64,
            alive: inner.shards.iter().filter(|s| s.lock().alive).count() as u64,
            rerouted: inner.rerouted.get(),
            deadline_expired: inner.deadline_expired.get(),
            no_shard_errors: inner.no_shard_errors.get(),
            kills: inner.kills.get(),
            restarts: inner.restarts.get(),
        }
    }

    /// Stops every worker after its current request and joins them.
    /// Called by `Drop`; anything still queued is dropped unanswered,
    /// so [`ShardPool::drain`] first for a graceful exit.
    pub fn shutdown(&self) {
        self.inner.running.store(false, Ordering::Relaxed);
        for shard in &self.inner.shards {
            shard.not_empty.notify_all();
            shard.not_full.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    fn spawn_workers(&self, idx: usize) {
        let mut handles = self.handles.lock().expect("handles poisoned");
        for _ in 0..self.inner.workers_per_shard {
            let inner = Arc::clone(&self.inner);
            handles.push(std::thread::spawn(move || worker_loop(&inner, idx)));
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The request op as a deterministic trace attribute value.
fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Analyze { .. } => "analyze",
        Op::AnalyzeDelta { .. } => "analyze_delta",
        Op::PutVersion { .. } => "put_version",
        Op::Query { .. } => "query",
        Op::Batch { .. } => "batch",
        Op::Stats => "stats",
        Op::Metrics => "metrics",
        Op::KillShard { .. } => "kill_shard",
        Op::RestartShard { .. } => "restart_shard",
    }
}

/// The routing app id: the single app, a batch's first app, or empty.
fn primary_app(op: &Op) -> String {
    match op {
        Op::Analyze { app }
        | Op::AnalyzeDelta { app }
        | Op::PutVersion { app, .. }
        | Op::Query { app, .. } => app.clone(),
        Op::Batch { apps } => apps.first().cloned().unwrap_or_default(),
        _ => String::new(),
    }
}

/// Every app an op reads or writes — what the per-app ordering guard
/// serializes on. A batch holds all of its apps so it cannot interleave
/// with an update to any of them.
fn job_apps(op: &Op) -> Vec<String> {
    match op {
        Op::Analyze { app }
        | Op::AnalyzeDelta { app }
        | Op::PutVersion { app, .. }
        | Op::Query { app, .. } => vec![app.clone()],
        Op::Batch { apps } => apps.clone(),
        _ => Vec::new(),
    }
}

fn worker_loop(inner: &PoolInner, idx: usize) {
    let shard = &inner.shards[idx];
    loop {
        let (job, service) = {
            let mut state = shard.lock();
            loop {
                if !inner.running.load(Ordering::Relaxed) || !state.alive {
                    state.workers -= 1;
                    shard.settled.notify_all();
                    return;
                }
                // Pick the first job none of whose apps is executing or
                // claimed by an *earlier* queued job — the scan keeps
                // same-app jobs in submission order even when a busy
                // app forces a later job to jump ahead.
                let pick = {
                    let mut claimed: HashSet<String> = HashSet::new();
                    let mut pick = None;
                    for (i, queued) in state.queue.iter().enumerate() {
                        let apps = job_apps(&queued.req.op);
                        if apps
                            .iter()
                            .all(|a| !state.busy.contains(a) && !claimed.contains(a))
                        {
                            pick = Some(i);
                            break;
                        }
                        claimed.extend(apps);
                    }
                    pick
                };
                if let Some(i) = pick {
                    let job = state.queue.remove(i).expect("picked index in range");
                    state.busy.extend(job_apps(&job.req.op));
                    state.in_flight += 1;
                    shard.not_full.notify_all();
                    let service =
                        Arc::clone(state.service.as_ref().expect("live shard has a service"));
                    break (job, service);
                }
                state = shard.not_empty.wait(state).expect("shard poisoned");
            }
        };
        let wait = job.enqueued.elapsed();
        inner.queue_wait_us.record(wait.as_micros() as u64);
        let mut tb = inner.tracer.as_ref().map(|t| {
            let mut tb = t.begin(job.seq);
            let root = tb.open(None, "request");
            tb.attr(root, "op", op_name(&job.req.op));
            tb.attr(root, "app", &primary_app(&job.req.op));
            tb.wall_attr(root, "shard", &idx.to_string());
            let q = tb.open(Some(root), "queue");
            tb.wall_attr(q, "wait_us", &wait.as_micros().to_string());
            tb.close(q);
            tb
        });
        let response = if job.deadline.is_some_and(|d| Instant::now() > d) {
            inner.deadline_expired.inc();
            if let Some(tb) = tb.as_mut() {
                let s = tb.open(Some(0), "deadline");
                tb.wall_attr(s, "wait_ms", &wait.as_millis().to_string());
                tb.close(s);
            }
            Reply::DeadlineExpired {
                id: job.req.id,
                queue_wait_ms: wait.as_millis() as u64,
            }
            .encode()
        } else {
            execute_request_traced(&service, &job.req, tb.as_mut())
        };
        if let (Some(tb), Some(tracer)) = (tb, inner.tracer.as_ref()) {
            tb.finish(tracer);
        }
        (job.respond)(job.seq, response);
        drop(service);
        let mut state = shard.lock();
        for app in job_apps(&job.req.op) {
            state.busy.remove(&app);
        }
        state.in_flight -= 1;
        // Queued jobs skipped while this job's apps were busy are now
        // eligible — wake the workers parked on an apparently non-empty
        // queue.
        shard.not_empty.notify_all();
        if state.in_flight == 0 {
            // Wakes both `drain` (queue empty, nothing in flight) and a
            // `kill_shard` waiting out the in-flight work.
            shard.settled.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use backdroid_appgen::benchset::BenchsetConfig;
    use std::collections::BTreeMap;

    fn pool(shards: usize) -> ShardPool {
        let bench = BenchsetConfig::sized(6, 0.04);
        ShardPool::new(
            ShardPoolConfig {
                shards,
                ..ShardPoolConfig::default()
            },
            move |_| {
                Service::over_benchset(
                    bench,
                    ServiceConfig {
                        budget_bytes: u64::MAX,
                        ..ServiceConfig::default()
                    },
                )
            },
        )
    }

    type Collected = Arc<Mutex<BTreeMap<u64, Option<String>>>>;

    fn collecting_responder() -> (Responder, Collected) {
        let seen: Collected = Arc::default();
        let sink = Arc::clone(&seen);
        let responder: Responder = Arc::new(move |seq, line| {
            let prev = sink.lock().unwrap().insert(seq, line);
            assert!(prev.is_none(), "duplicate response for seq {seq}");
        });
        (responder, seen)
    }

    #[test]
    fn routes_are_stable_and_cover_all_shards() {
        let p = pool(4);
        for id in ["0", "1", "2", "17", "com.app.x"] {
            assert_eq!(p.route(id), p.route(id));
            assert!(p.route(id) < 4);
        }
        let covered: std::collections::BTreeSet<usize> =
            (0..64).map(|i| p.route(&i.to_string())).collect();
        assert!(covered.len() > 1, "hashing must spread apps across shards");
    }

    #[test]
    fn submits_answer_exactly_once_and_drain_waits() {
        let p = pool(2);
        let (responder, seen) = collecting_responder();
        for seq in 0..8u64 {
            let line = format!(
                "{{\"id\":{seq},\"op\":\"analyze\",\"app\":\"{}\"}}",
                seq % 3
            );
            p.submit_line(seq, &line, &responder);
        }
        p.submit_line(8, "", &responder);
        p.submit_line(9, "not json", &responder);
        p.drain();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 10, "every submission answered exactly once");
        assert_eq!(seen[&8], None, "blank line produces no output");
        assert!(seen[&9].as_ref().unwrap().contains("\"error\""));
    }

    #[test]
    fn kill_reroutes_and_restart_revives() {
        let p = pool(3);
        let (responder, seen) = collecting_responder();
        let victim = p.route("1");
        assert!(p.kill_shard(victim));
        assert!(!p.kill_shard(victim), "second kill is a no-op");
        p.submit_line(0, "{\"id\":0,\"op\":\"analyze\",\"app\":\"1\"}", &responder);
        p.drain();
        assert!(seen.lock().unwrap()[&0]
            .as_ref()
            .unwrap()
            .contains("\"app\":\"1\""));
        let ps = p.pool_stats();
        assert_eq!((ps.kills, ps.alive), (1, 2));
        assert!(ps.rerouted >= 1, "the dead primary was probed past");
        assert!(p.restart_shard(victim));
        assert!(!p.restart_shard(victim), "second restart is a no-op");
        assert_eq!(p.pool_stats().alive, 3);
        // Same request id, so the rendered line must be byte-identical.
        p.submit_line(1, "{\"id\":0,\"op\":\"analyze\",\"app\":\"1\"}", &responder);
        p.drain();
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen[&1], seen[&0],
            "the revived shard serves the identical response"
        );
    }

    #[test]
    fn expired_deadlines_get_deterministic_errors() {
        let p = pool(1);
        let (responder, seen) = collecting_responder();
        // deadline_ms 0: expired the moment a worker dequeues it.
        p.submit_line(
            0,
            "{\"id\":0,\"op\":\"analyze\",\"app\":\"0\",\"deadline_ms\":0}",
            &responder,
        );
        p.drain();
        let line = seen.lock().unwrap()[&0].clone().expect("a response line");
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(0));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("deadline exceeded")
        );
        assert!(
            v.get("queue_wait_ms").and_then(Json::as_u64).is_some(),
            "the error carries the measured queue wait: {line}"
        );
        assert_eq!(p.pool_stats().deadline_expired, 1);
        let agg = p.metrics();
        let hist = agg.histogram("pool_queue_wait_us").expect("wait histogram");
        assert_eq!(hist.count, 1, "every dequeued job records its wait");
    }

    #[test]
    fn stats_aggregate_across_kill_and_restart() {
        let p = pool(2);
        let (responder, _seen) = collecting_responder();
        for seq in 0..6u64 {
            let line = format!(
                "{{\"id\":{seq},\"op\":\"analyze\",\"app\":\"{}\"}}",
                seq % 4
            );
            p.submit_line(seq, &line, &responder);
        }
        p.drain();
        let before = p.stats();
        assert_eq!(before.requests, 6);
        p.kill_shard(0);
        p.restart_shard(0);
        let after = p.stats();
        assert_eq!(
            after.requests, 6,
            "retired counters keep the aggregate monotonic across restarts"
        );
        assert_eq!(after.analyze_requests, before.analyze_requests);
    }

    #[test]
    fn same_app_updates_execute_in_submission_order_across_workers() {
        // An update chain interleaved with reads, raced by 4 workers on
        // one shard, must answer byte-for-byte like the serial 1-worker
        // pool: the per-app ordering guard keeps same-app jobs
        // sequential while the other app's jobs still overlap freely.
        let bench = BenchsetConfig::sized(6, 0.04);
        let mk = move |workers: usize| {
            ShardPool::new(
                ShardPoolConfig {
                    shards: 1,
                    workers_per_shard: workers,
                    ..ShardPoolConfig::default()
                },
                move |_| {
                    Service::over_benchset(
                        bench,
                        ServiceConfig {
                            budget_bytes: u64::MAX,
                            ..ServiceConfig::default()
                        },
                    )
                },
            )
        };
        let mut lines = Vec::new();
        let mut id = 0u64;
        for seed in [11u64, 12, 13] {
            for app in ["1", "2"] {
                for op in [
                    format!("\"op\":\"put_version\",\"app\":\"{app}\",\"seed\":{seed}"),
                    format!("\"op\":\"analyze_delta\",\"app\":\"{app}\""),
                    format!("\"op\":\"analyze\",\"app\":\"{app}\""),
                ] {
                    lines.push(format!("{{\"id\":{id},{op}}}"));
                    id += 1;
                }
            }
        }
        let run = |workers: usize| {
            let p = mk(workers);
            let (responder, seen) = collecting_responder();
            for (seq, line) in lines.iter().enumerate() {
                p.submit_line(seq as u64, line, &responder);
            }
            p.drain();
            let seen = seen.lock().unwrap();
            (0..lines.len() as u64)
                .map(|s| seen[&s].clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(
            run(4),
            run(1),
            "racing workers must not reorder same-app updates"
        );
    }
}
