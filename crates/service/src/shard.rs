//! The sharded serving topology: N shard workers, each owning one
//! [`Service`] (and therefore one [`crate::AppStore`]), behind a router
//! that consistent-hashes app ids so **every app image is resident on
//! exactly one shard** — the market-scale layout where no single
//! process can hold the whole store.
//!
//! * **Routing** — `fnv1a64(app_id) % shards` (the same hash the
//!   snapshot checksums use), probing forward past dead shards; batch
//!   requests route by their first app.
//! * **Admission control** — each shard has a bounded queue;
//!   [`ShardPool::submit_line`] blocks when the target queue is full
//!   (backpressure to the reader), never drops.
//! * **Deadlines** — a request carrying `"deadline_ms"` that is still
//!   queued when its deadline passes is answered with a deterministic
//!   error instead of being analyzed.
//! * **Crash + restart** — [`ShardPool::kill_shard`] takes a shard
//!   down: its queue is re-routed to surviving shards, its in-flight
//!   work completes (so no response is ever lost or duplicated), its
//!   counters are folded into the pool's retired total, and its memory
//!   tier is dropped. [`ShardPool::restart_shard`] brings it back with
//!   a fresh [`Service`] over the **shared snapshot directory**, so the
//!   restarted shard is disk-warm (PR-5's tier) instead of re-parsing.
//!
//! Responses stay a pure function of (app, requested sinks), so a
//! sharded replay — at any shard count, across a kill/restart — is
//! byte-identical to the single-process `--direct` golden. The
//! `tests/shard_equivalence.rs` and `tests/shard_fault_injection.rs`
//! tiers enforce exactly that.

use crate::proto::{self, parse_json, parse_request, Json, Request, RequestOp};
use crate::service::{Service, ServiceStats};
use backdroid_ir::wire::fnv1a64;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Delivers one completed response: the submission sequence number and
/// the rendered line (`None` = nothing to emit — blank input, admin
/// ops). Shared by every job of one input stream, typically an
/// [`crate::transport::OrderedEmitter`] closure.
pub type Responder = Arc<dyn Fn(u64, Option<String>) + Send + Sync>;

/// Builds the `Service` for one (re)started shard. Every shard gets the
/// same configuration — in particular the same snapshot directory, which
/// is what makes restarts disk-warm.
pub type ShardFactory = dyn Fn(usize) -> Service + Send + Sync;

/// Shard-pool configuration.
#[derive(Clone, Debug)]
pub struct ShardPoolConfig {
    /// Number of shards (each owns one `Service` + `AppStore`).
    pub shards: usize,
    /// Worker threads per shard draining its queue.
    pub workers_per_shard: usize,
    /// Bounded per-shard queue depth; submission blocks when full.
    pub queue_capacity: usize,
}

impl Default for ShardPoolConfig {
    fn default() -> Self {
        ShardPoolConfig {
            shards: 4,
            workers_per_shard: 1,
            queue_capacity: 64,
        }
    }
}

/// Pool-level counters (everything the per-shard [`ServiceStats`] can't
/// see): routing, admission, and lifecycle events.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PoolStats {
    /// Configured shard count.
    pub shards: u64,
    /// Shards currently alive.
    pub alive: u64,
    /// Jobs enqueued on a non-primary shard because the primary was
    /// dead (includes queue re-routes after a kill).
    pub rerouted: u64,
    /// Requests answered with a deterministic deadline error because
    /// they were still queued when their deadline passed.
    pub deadline_expired: u64,
    /// Requests that found no live shard at all.
    pub no_shard_errors: u64,
    /// `kill_shard` calls that took a live shard down.
    pub kills: u64,
    /// `restart_shard` calls that brought a dead shard back.
    pub restarts: u64,
}

/// One queued request.
struct Job {
    seq: u64,
    req: Request,
    respond: Responder,
    deadline: Option<Instant>,
}

struct ShardState {
    queue: VecDeque<Job>,
    /// The shard's service; `None` exactly while the shard is dead.
    service: Option<Arc<Service>>,
    alive: bool,
    in_flight: usize,
    /// Worker threads currently attached to this shard.
    workers: usize,
}

struct Shard {
    state: Mutex<ShardState>,
    not_empty: Condvar,
    not_full: Condvar,
    /// Signalled when `in_flight`/`workers` drop or the queue empties.
    settled: Condvar,
}

impl Shard {
    fn lock(&self) -> MutexGuard<'_, ShardState> {
        self.state.lock().expect("shard poisoned")
    }
}

struct PoolInner {
    shards: Vec<Shard>,
    factory: Box<ShardFactory>,
    queue_capacity: usize,
    workers_per_shard: usize,
    running: AtomicBool,
    rerouted: AtomicU64,
    deadline_expired: AtomicU64,
    no_shard_errors: AtomicU64,
    kills: AtomicU64,
    restarts: AtomicU64,
    /// Stats folded in from killed shards, so aggregate counters stay
    /// monotonic across restarts.
    retired: Mutex<ServiceStats>,
}

/// The sharded service pool. `submit_line` may be called from any
/// number of reader threads; responses are delivered through each job's
/// [`Responder`] from whichever shard worker completed it.
pub struct ShardPool {
    inner: Arc<PoolInner>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("pool", &self.pool_stats())
            .finish()
    }
}

/// Runs one already-parsed request against a service and renders the
/// response line. `None` means the op produces no output: the admin ops
/// (`kill_shard` / `restart_shard`), which are pool-level and a no-op
/// on a plain service — keeping them silent means a trace spliced with
/// admin lines still diffs byte-for-byte against an unsharded golden.
pub fn execute_request(service: &Service, req: &Request) -> Option<String> {
    Some(match &req.op {
        RequestOp::Analyze { app } => match service.analyze_app(app) {
            Ok(a) => proto::render_analysis(req.id, "analyze", &a),
            Err(e) => proto::render_error(req.id, &e.to_string()),
        },
        RequestOp::Query { app, detectors } => match service.query_detectors(app, detectors) {
            Ok(a) => proto::render_analysis(req.id, "query", &a),
            Err(e) => proto::render_error(req.id, &e.to_string()),
        },
        RequestOp::Batch { apps } => proto::render_batch(req.id, &service.analyze_batch(apps)),
        RequestOp::Stats => proto::render_stats(req.id, &service.stats()),
        RequestOp::KillShard { .. } | RequestOp::RestartShard { .. } => return None,
    })
}

impl ShardPool {
    /// Creates the pool and spawns `shards × workers_per_shard` workers.
    /// The factory builds each shard's `Service` — called again on every
    /// [`ShardPool::restart_shard`].
    pub fn new(
        cfg: ShardPoolConfig,
        factory: impl Fn(usize) -> Service + Send + Sync + 'static,
    ) -> Self {
        let shards = cfg.shards.max(1);
        let workers_per_shard = cfg.workers_per_shard.max(1);
        let inner = Arc::new(PoolInner {
            shards: (0..shards)
                .map(|i| Shard {
                    state: Mutex::new(ShardState {
                        queue: VecDeque::new(),
                        service: Some(Arc::new(factory(i))),
                        alive: true,
                        in_flight: 0,
                        workers: workers_per_shard,
                    }),
                    not_empty: Condvar::new(),
                    not_full: Condvar::new(),
                    settled: Condvar::new(),
                })
                .collect(),
            factory: Box::new(factory),
            queue_capacity: cfg.queue_capacity.max(1),
            workers_per_shard,
            running: AtomicBool::new(true),
            rerouted: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            no_shard_errors: AtomicU64::new(0),
            kills: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            retired: Mutex::new(ServiceStats::default()),
        });
        let pool = ShardPool {
            inner,
            handles: Mutex::new(Vec::new()),
        };
        for i in 0..shards {
            pool.spawn_workers(i);
        }
        pool
    }

    /// Number of configured shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard `app_id` hashes to — where its image is resident while
    /// that shard is alive.
    pub fn route(&self, app_id: &str) -> usize {
        (fnv1a64(app_id.as_bytes()) % self.inner.shards.len() as u64) as usize
    }

    /// Submits one input line. Parse errors, `stats`, and the admin ops
    /// are answered on the calling thread; analyze/query/batch jobs are
    /// routed to their shard's queue (blocking while it is full). Every
    /// submission produces exactly one `respond(seq, …)` call.
    pub fn submit_line(&self, seq: u64, line: &str, respond: &Responder) {
        let line = line.trim();
        if line.is_empty() {
            respond(seq, None);
            return;
        }
        let req = match parse_request(line) {
            Ok(r) => r,
            Err(e) => {
                let id = parse_json(line)
                    .ok()
                    .and_then(|v| v.get("id").and_then(Json::as_u64))
                    .unwrap_or(0);
                respond(seq, Some(proto::render_error(id, &e)));
                return;
            }
        };
        match &req.op {
            RequestOp::Stats => {
                respond(seq, Some(proto::render_stats(req.id, &self.stats())));
            }
            &RequestOp::KillShard { shard } => {
                self.kill_shard(shard as usize);
                respond(seq, None);
            }
            &RequestOp::RestartShard { shard } => {
                self.restart_shard(shard as usize);
                respond(seq, None);
            }
            RequestOp::Analyze { .. } | RequestOp::Query { .. } | RequestOp::Batch { .. } => {
                let primary = match &req.op {
                    RequestOp::Batch { apps } => apps.first().cloned().unwrap_or_default(),
                    RequestOp::Analyze { app } | RequestOp::Query { app, .. } => app.clone(),
                    _ => unreachable!(),
                };
                let deadline = req
                    .deadline_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                self.route_job(
                    self.route(&primary),
                    Job {
                        seq,
                        req,
                        respond: Arc::clone(respond),
                        deadline,
                    },
                );
            }
        }
    }

    /// Enqueues `job` on `primary`, probing forward past dead shards.
    fn route_job(&self, primary: usize, job: Job) {
        let n = self.inner.shards.len();
        let mut job = job;
        for k in 0..n {
            let idx = (primary + k) % n;
            match self.try_enqueue(idx, job) {
                Ok(()) => {
                    if k > 0 {
                        self.inner.rerouted.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
                Err(returned) => job = returned,
            }
        }
        self.inner.no_shard_errors.fetch_add(1, Ordering::Relaxed);
        (job.respond)(
            job.seq,
            Some(proto::render_error(job.req.id, "no shard available")),
        );
    }

    /// Blocking bounded put; `Err(job)` if the shard is (or went) dead.
    fn try_enqueue(&self, idx: usize, job: Job) -> Result<(), Job> {
        let shard = &self.inner.shards[idx];
        let mut state = shard.lock();
        loop {
            if !state.alive || !self.inner.running.load(Ordering::Relaxed) {
                return Err(job);
            }
            if state.queue.len() < self.inner.queue_capacity {
                state.queue.push_back(job);
                shard.not_empty.notify_one();
                return Ok(());
            }
            state = shard.not_full.wait(state).expect("shard poisoned");
        }
    }

    /// Takes shard `idx` down: stops its workers (the current in-flight
    /// request completes and is answered — nothing is lost), re-routes
    /// everything still queued, folds its counters into the retired
    /// total, and drops its service (memory tier gone; its snapshots
    /// stay on disk). Returns `false` if the index is out of range or
    /// the shard was already dead.
    pub fn kill_shard(&self, idx: usize) -> bool {
        let Some(shard) = self.inner.shards.get(idx) else {
            return false;
        };
        let stranded = {
            let mut state = shard.lock();
            if !state.alive {
                return false;
            }
            state.alive = false;
            shard.not_empty.notify_all();
            shard.not_full.notify_all();
            std::mem::take(&mut state.queue)
        };
        self.inner.kills.fetch_add(1, Ordering::Relaxed);
        // Wait for the workers to finish their in-flight requests and
        // detach, then retire the service's counters and drop it.
        {
            let mut state = shard.lock();
            while state.workers > 0 || state.in_flight > 0 {
                state = shard.settled.wait(state).expect("shard poisoned");
            }
            let service = state.service.take().expect("dead shard kept a service");
            let mut retired = self.inner.retired.lock().expect("retired stats poisoned");
            retired.absorb(&service.stats());
        }
        // Re-route the stranded queue through the normal router, which
        // now probes past this shard — each displaced job is counted as
        // rerouted by `route_job`'s probe.
        for job in stranded {
            let primary = match &job.req.op {
                RequestOp::Batch { apps } => apps.first().cloned().unwrap_or_default(),
                RequestOp::Analyze { app } | RequestOp::Query { app, .. } => app.clone(),
                _ => String::new(),
            };
            self.route_job(self.route(&primary), job);
        }
        true
    }

    /// Brings a dead shard back with a fresh service from the factory —
    /// over the shared snapshot directory, so first touches are disk
    /// restores, not re-parses. Returns `false` if the index is out of
    /// range or the shard is already alive.
    pub fn restart_shard(&self, idx: usize) -> bool {
        let Some(shard) = self.inner.shards.get(idx) else {
            return false;
        };
        {
            let mut state = shard.lock();
            if state.alive {
                return false;
            }
            state.service = Some(Arc::new((self.inner.factory)(idx)));
            state.alive = true;
            state.workers = self.inner.workers_per_shard;
        }
        self.inner.restarts.fetch_add(1, Ordering::Relaxed);
        self.spawn_workers(idx);
        true
    }

    /// Blocks until every live shard's queue is empty and nothing is in
    /// flight — all submitted responses delivered.
    pub fn drain(&self) {
        for shard in &self.inner.shards {
            let mut state = shard.lock();
            while state.alive && (!state.queue.is_empty() || state.in_flight > 0) {
                state = shard.settled.wait(state).expect("shard poisoned");
            }
        }
    }

    /// Aggregated service + store counters: the retired totals of every
    /// killed shard plus the live shards' current counters — what the
    /// JSONL `stats` op renders, so tier hit rates stay meaningful
    /// across the whole pool.
    pub fn stats(&self) -> ServiceStats {
        let mut agg = *self.inner.retired.lock().expect("retired stats poisoned");
        for shard in &self.inner.shards {
            if let Some(service) = &shard.lock().service {
                agg.absorb(&service.stats());
            }
        }
        agg
    }

    /// One live shard's own counters (`None` while it is dead) — the
    /// per-shard view `service_throughput --shards` reports.
    pub fn shard_stats(&self, idx: usize) -> Option<ServiceStats> {
        self.inner
            .shards
            .get(idx)?
            .lock()
            .service
            .as_ref()
            .map(|s| s.stats())
    }

    /// Routing/admission/lifecycle counters.
    pub fn pool_stats(&self) -> PoolStats {
        let inner = &self.inner;
        PoolStats {
            shards: inner.shards.len() as u64,
            alive: inner.shards.iter().filter(|s| s.lock().alive).count() as u64,
            rerouted: inner.rerouted.load(Ordering::Relaxed),
            deadline_expired: inner.deadline_expired.load(Ordering::Relaxed),
            no_shard_errors: inner.no_shard_errors.load(Ordering::Relaxed),
            kills: inner.kills.load(Ordering::Relaxed),
            restarts: inner.restarts.load(Ordering::Relaxed),
        }
    }

    /// Stops every worker after its current request and joins them.
    /// Called by `Drop`; anything still queued is dropped unanswered,
    /// so [`ShardPool::drain`] first for a graceful exit.
    pub fn shutdown(&self) {
        self.inner.running.store(false, Ordering::Relaxed);
        for shard in &self.inner.shards {
            shard.not_empty.notify_all();
            shard.not_full.notify_all();
        }
        let handles = std::mem::take(&mut *self.handles.lock().expect("handles poisoned"));
        for h in handles {
            let _ = h.join();
        }
    }

    fn spawn_workers(&self, idx: usize) {
        let mut handles = self.handles.lock().expect("handles poisoned");
        for _ in 0..self.inner.workers_per_shard {
            let inner = Arc::clone(&self.inner);
            handles.push(std::thread::spawn(move || worker_loop(&inner, idx)));
        }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(inner: &PoolInner, idx: usize) {
    let shard = &inner.shards[idx];
    loop {
        let (job, service) = {
            let mut state = shard.lock();
            loop {
                if !inner.running.load(Ordering::Relaxed) || !state.alive {
                    state.workers -= 1;
                    shard.settled.notify_all();
                    return;
                }
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    shard.not_full.notify_all();
                    let service =
                        Arc::clone(state.service.as_ref().expect("live shard has a service"));
                    break (job, service);
                }
                state = shard.not_empty.wait(state).expect("shard poisoned");
            }
        };
        let response = if job.deadline.is_some_and(|d| Instant::now() > d) {
            inner.deadline_expired.fetch_add(1, Ordering::Relaxed);
            Some(proto::render_error(job.req.id, "deadline exceeded"))
        } else {
            execute_request(&service, &job.req)
        };
        (job.respond)(job.seq, response);
        drop(service);
        let mut state = shard.lock();
        state.in_flight -= 1;
        if state.in_flight == 0 {
            // Wakes both `drain` (queue empty, nothing in flight) and a
            // `kill_shard` waiting out the in-flight work.
            shard.settled.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use backdroid_appgen::benchset::BenchsetConfig;
    use std::collections::BTreeMap;

    fn pool(shards: usize) -> ShardPool {
        let bench = BenchsetConfig::sized(6, 0.04);
        ShardPool::new(
            ShardPoolConfig {
                shards,
                ..ShardPoolConfig::default()
            },
            move |_| {
                Service::over_benchset(
                    bench,
                    ServiceConfig {
                        budget_bytes: u64::MAX,
                        ..ServiceConfig::default()
                    },
                )
            },
        )
    }

    type Collected = Arc<Mutex<BTreeMap<u64, Option<String>>>>;

    fn collecting_responder() -> (Responder, Collected) {
        let seen: Collected = Arc::default();
        let sink = Arc::clone(&seen);
        let responder: Responder = Arc::new(move |seq, line| {
            let prev = sink.lock().unwrap().insert(seq, line);
            assert!(prev.is_none(), "duplicate response for seq {seq}");
        });
        (responder, seen)
    }

    #[test]
    fn routes_are_stable_and_cover_all_shards() {
        let p = pool(4);
        for id in ["0", "1", "2", "17", "com.app.x"] {
            assert_eq!(p.route(id), p.route(id));
            assert!(p.route(id) < 4);
        }
        let covered: std::collections::BTreeSet<usize> =
            (0..64).map(|i| p.route(&i.to_string())).collect();
        assert!(covered.len() > 1, "hashing must spread apps across shards");
    }

    #[test]
    fn submits_answer_exactly_once_and_drain_waits() {
        let p = pool(2);
        let (responder, seen) = collecting_responder();
        for seq in 0..8u64 {
            let line = format!(
                "{{\"id\":{seq},\"op\":\"analyze\",\"app\":\"{}\"}}",
                seq % 3
            );
            p.submit_line(seq, &line, &responder);
        }
        p.submit_line(8, "", &responder);
        p.submit_line(9, "not json", &responder);
        p.drain();
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 10, "every submission answered exactly once");
        assert_eq!(seen[&8], None, "blank line produces no output");
        assert!(seen[&9].as_ref().unwrap().contains("\"error\""));
    }

    #[test]
    fn kill_reroutes_and_restart_revives() {
        let p = pool(3);
        let (responder, seen) = collecting_responder();
        let victim = p.route("1");
        assert!(p.kill_shard(victim));
        assert!(!p.kill_shard(victim), "second kill is a no-op");
        p.submit_line(0, "{\"id\":0,\"op\":\"analyze\",\"app\":\"1\"}", &responder);
        p.drain();
        assert!(seen.lock().unwrap()[&0]
            .as_ref()
            .unwrap()
            .contains("\"app\":\"1\""));
        let ps = p.pool_stats();
        assert_eq!((ps.kills, ps.alive), (1, 2));
        assert!(ps.rerouted >= 1, "the dead primary was probed past");
        assert!(p.restart_shard(victim));
        assert!(!p.restart_shard(victim), "second restart is a no-op");
        assert_eq!(p.pool_stats().alive, 3);
        // Same request id, so the rendered line must be byte-identical.
        p.submit_line(1, "{\"id\":0,\"op\":\"analyze\",\"app\":\"1\"}", &responder);
        p.drain();
        let seen = seen.lock().unwrap();
        assert_eq!(
            seen[&1], seen[&0],
            "the revived shard serves the identical response"
        );
    }

    #[test]
    fn expired_deadlines_get_deterministic_errors() {
        let p = pool(1);
        let (responder, seen) = collecting_responder();
        // deadline_ms 0: expired the moment a worker dequeues it.
        p.submit_line(
            0,
            "{\"id\":0,\"op\":\"analyze\",\"app\":\"0\",\"deadline_ms\":0}",
            &responder,
        );
        p.drain();
        assert_eq!(
            seen.lock().unwrap()[&0].as_deref(),
            Some("{\"id\":0,\"error\":\"deadline exceeded\"}"),
        );
        assert_eq!(p.pool_stats().deadline_expired, 1);
    }

    #[test]
    fn stats_aggregate_across_kill_and_restart() {
        let p = pool(2);
        let (responder, _seen) = collecting_responder();
        for seq in 0..6u64 {
            let line = format!(
                "{{\"id\":{seq},\"op\":\"analyze\",\"app\":\"{}\"}}",
                seq % 4
            );
            p.submit_line(seq, &line, &responder);
        }
        p.drain();
        let before = p.stats();
        assert_eq!(before.requests, 6);
        p.kill_shard(0);
        p.restart_shard(0);
        let after = p.stats();
        assert_eq!(
            after.requests, 6,
            "retired counters keep the aggregate monotonic across restarts"
        );
        assert_eq!(after.analyze_requests, before.analyze_requests);
    }
}
