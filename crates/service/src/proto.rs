//! The typed request/response protocol every transport of
//! `backdroid-serve` speaks: one [`Op`] enum for everything a client
//! can ask, one [`Reply`] enum for everything the server can answer,
//! and exactly one decode path ([`parse_request`]) and one encode path
//! ([`Reply::encode`]) between them. The JSONL stdin/stdout loop, the
//! length-framed socket transport, and the shard pool all carry the
//! same encoded lines — a framed payload *is* a JSONL line — so adding
//! an op here makes it available on every transport at once.
//!
//! The vendored `serde` stand-in has neither a serializer nor a
//! deserializer, so this module carries a small hand-rolled JSON reader
//! and writer. Requests are one JSON object per line:
//!
//! ```json
//! {"id":0,"op":"analyze","app":"3"}
//! {"id":1,"op":"query","app":"3","sinks":["crypto"]}
//! {"id":2,"op":"batch","apps":["0","1","0"]}
//! {"id":3,"op":"put_version","app":"3","seed":7}
//! {"id":4,"op":"analyze_delta","app":"3"}
//! ```
//!
//! Responses mirror the request `id` and contain **only deterministic
//! fields** — sink reports, verdicts, counts — never wall-clock times,
//! engine-wide cache counters, or the warm/cold fetch outcome, all of
//! which depend on scheduling when the server runs multiple workers.
//! That is what lets CI diff server output byte-for-byte across worker
//! counts, search backends, store budgets — and, for `analyze_delta`,
//! across an incrementally updated server and a from-scratch one.

use crate::service::{AppAnalysis, ServiceError};
use backdroid_appgen::workload::{WorkloadOp, WorkloadRequest};
use backdroid_core::{SinkReport, Verdict};
use backdroid_obs::RegistrySnapshot;

// ---------------------------------------------------------------------
// JSON reading
// ---------------------------------------------------------------------

/// A parsed JSON value (numbers are kept as `f64`; the protocol only
/// uses small integer ids and indices, which `f64` holds exactly).
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number literal.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-')) {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if matches!(b.get(*pos), Some(b'.')) {
        *pos += 1;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|n| n.is_finite())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // High surrogate: must pair with a following
                            // \uDC00..\uDFFF low surrogate.
                            if !matches!(b.get(*pos + 1..*pos + 3), Some([b'\\', b'u'])) {
                                return Err("unpaired high surrogate".into());
                            }
                            let low = parse_hex4(b, *pos + 3)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err("invalid low surrogate".into());
                            }
                            *pos += 6;
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(combined).ok_or("invalid surrogate pair")?);
                        } else {
                            out.push(char::from_u32(code).ok_or("unpaired low surrogate")?);
                        }
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + ch_len)
                    .and_then(|s| std::str::from_utf8(s).ok())
                    .ok_or("invalid UTF-8 in string")?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

/// Reads the four hex digits of a `\u` escape starting at `at`.
fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b
        .get(at..at + 4)
        .and_then(|h| std::str::from_utf8(h).ok())
        .ok_or("truncated \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".into())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b']')) {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if matches!(b.get(*pos), Some(b'}')) {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------
// JSON writing
// ---------------------------------------------------------------------

/// Escapes a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn str_field(key: &str, value: &str) -> String {
    format!("\"{}\":\"{}\"", key, escape(value))
}

fn arr(items: impl IntoIterator<Item = String>) -> String {
    format!("[{}]", items.into_iter().collect::<Vec<_>>().join(","))
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One parsed protocol request.
#[derive(Clone, PartialEq, Debug)]
pub struct Request {
    /// Caller-chosen id echoed in the response.
    pub id: u64,
    /// The operation.
    pub op: Op,
    /// Optional deadline in milliseconds from submission. A sharded
    /// server answers a request still queued past its deadline with a
    /// deterministic `"deadline exceeded"` error instead of analyzing
    /// it. Absent (the default) = no deadline.
    pub deadline_ms: Option<u64>,
}

/// The protocol operations — the request half of the [`Op`]/[`Reply`]
/// pair every transport shares.
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// Full-registry analysis of one app.
    Analyze {
        /// App id (benchset index for `backdroid-serve`).
        app: String,
    },
    /// Detector-restricted analysis of one app.
    Query {
        /// App id.
        app: String,
        /// Requested detector ids (empty = every registered detector).
        /// The wire key stays `"sinks"` for compatibility, and the
        /// legacy class names `"crypto"`/`"ssl"` are also detector ids,
        /// so old clients keep working unchanged. Unknown ids parse
        /// fine and are answered by the service with a deterministic
        /// error response.
        detectors: Vec<String>,
    },
    /// Batched multi-app analysis.
    Batch {
        /// App ids, analyzed in order.
        apps: Vec<String>,
    },
    /// Service + store counter snapshot (tier hit rates, disk bytes).
    /// Operator-facing: counters depend on scheduling and on which tier
    /// served each request, so traces meant for byte-identical replay
    /// diffs must not include this op. A sharded server renders the
    /// aggregate across every shard (live + retired).
    Stats,
    /// Full metrics-registry snapshot: every counter, gauge, and
    /// histogram (with derivable p50/p90/p99), as one aggregate object
    /// plus the per-shard views (`null` for dead shards; a single entry
    /// on an unsharded server). Operator-facing like [`Op::Stats`]
    /// — the values depend on scheduling and tiers, so replay-diffed
    /// traces must not include this op either.
    Metrics,
    /// Admin op: take shard N down (queue re-routed, memory tier
    /// dropped). Produces **no output** and is a no-op on an unsharded
    /// server, so a trace spliced with admin lines still diffs
    /// byte-for-byte against any golden.
    KillShard {
        /// The shard index to kill.
        shard: u64,
    },
    /// Admin op: bring shard N back disk-warm over the shared snapshot
    /// directory. Silent and unsharded-safe, like
    /// [`Op::KillShard`].
    RestartShard {
        /// The shard index to restart.
        shard: u64,
    },
    /// Publishes version *n+1* of an app: the server mutates the app's
    /// current program with the deterministic update generator
    /// (`backdroid_appgen::mutate_version`), persists the new version's
    /// per-class chunks, and swaps the served image. The response
    /// carries only deterministic fields (version number, ground-truth
    /// delta class counts) so update traces replay byte-for-byte.
    PutVersion {
        /// App id.
        app: String,
        /// Update-generator seed — same current version + same seed ⇒
        /// the same next version on every server.
        seed: u64,
    },
    /// Incremental full-registry analysis of the app's current version,
    /// reusing prior verdicts where the update provably cannot have
    /// changed them. The response body is **byte-identical** to what a
    /// from-scratch analysis of the same version would report — only
    /// the echoed op differs from [`Op::Analyze`] — so delta-warm and
    /// cold servers diff clean.
    AnalyzeDelta {
        /// App id.
        app: String,
    },
}

/// An app id may arrive as a JSON string or a small integer.
fn app_id_of(v: &Json) -> Result<String, String> {
    match v {
        Json::Str(s) => Ok(s.clone()),
        Json::Num(_) => v
            .as_u64()
            .map(|n| n.to_string())
            .ok_or_else(|| "app id must be a string or a non-negative integer".into()),
        _ => Err("app id must be a string or a non-negative integer".into()),
    }
}

/// Parses one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let id = v
        .get("id")
        .and_then(Json::as_u64)
        .ok_or("request needs a non-negative integer \"id\"")?;
    let op_name = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request needs an \"op\" string")?;
    let app = || -> Result<String, String> {
        app_id_of(v.get("app").ok_or("request needs an \"app\" field")?)
    };
    let op = match op_name {
        "analyze" => Op::Analyze { app: app()? },
        "analyze_delta" => Op::AnalyzeDelta { app: app()? },
        "put_version" => Op::PutVersion {
            app: app()?,
            seed: v
                .get("seed")
                .and_then(Json::as_u64)
                .ok_or("put_version needs a non-negative integer \"seed\"")?,
        },
        "query" => {
            let detectors = match v.get("sinks") {
                None => Vec::new(),
                Some(s) => s
                    .as_arr()
                    .ok_or("\"sinks\" must be an array of detector ids")?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| format!("detector id must be a string, got {c:?}"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
            };
            Op::Query {
                app: app()?,
                detectors,
            }
        }
        "batch" => {
            let apps = v
                .get("apps")
                .and_then(Json::as_arr)
                .ok_or("batch needs an \"apps\" array")?
                .iter()
                .map(app_id_of)
                .collect::<Result<Vec<_>, _>>()?;
            Op::Batch { apps }
        }
        "stats" => Op::Stats,
        "metrics" => Op::Metrics,
        "kill_shard" | "restart_shard" => {
            let shard = v
                .get("shard")
                .and_then(Json::as_u64)
                .ok_or("admin ops need a non-negative integer \"shard\"")?;
            if op_name == "kill_shard" {
                Op::KillShard { shard }
            } else {
                Op::RestartShard { shard }
            }
        }
        other => return Err(format!("unknown op {other:?}")),
    };
    let deadline_ms = match v.get("deadline_ms") {
        None => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or("\"deadline_ms\" must be a non-negative integer")?,
        ),
    };
    Ok(Request {
        id,
        op,
        deadline_ms,
    })
}

/// Renders one [`WorkloadRequest`] as a protocol request line — how
/// `backdroid-serve --emit-trace` turns the generator's output into a
/// pipeable trace.
pub fn workload_request_line(id: u64, req: &WorkloadRequest) -> String {
    let deadline = req
        .deadline_ms
        .map(|ms| format!(",\"deadline_ms\":{ms}"))
        .unwrap_or_default();
    match &req.op {
        WorkloadOp::Analyze => {
            format!(
                "{{\"id\":{id},\"op\":\"analyze\",\"app\":\"{}\"{deadline}}}",
                req.app
            )
        }
        WorkloadOp::Query(classes) => format!(
            "{{\"id\":{id},\"op\":\"query\",\"app\":\"{}\",\"sinks\":{}{deadline}}}",
            req.app,
            arr(classes.iter().map(|c| format!("\"{}\"", escape(c))))
        ),
        WorkloadOp::Batch(extra) => {
            let apps = std::iter::once(req.app)
                .chain(extra.iter().copied())
                .map(|a| format!("\"{a}\""));
            format!(
                "{{\"id\":{id},\"op\":\"batch\",\"apps\":{}{deadline}}}",
                arr(apps)
            )
        }
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

fn verdict_fields(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Vulnerable(reason) => format!(
            "{},{}",
            str_field("verdict", "vulnerable"),
            str_field("reason", reason)
        ),
        Verdict::Safe => str_field("verdict", "safe"),
        Verdict::Undetermined => str_field("verdict", "undetermined"),
    }
}

fn sink_report_json(r: &SinkReport) -> String {
    format!(
        "{{{},{},\"stmt\":{},\"reachable\":{},{},\"entries\":{},\"values\":{},\"ssg_units\":{}}}",
        str_field("sink", &r.sink_id),
        str_field("method", &r.site_method.to_string()),
        r.stmt_idx,
        r.reachable,
        verdict_fields(&r.verdict),
        arr(r
            .entries
            .iter()
            .map(|e| format!("\"{}\"", escape(&e.to_string())))),
        arr(r
            .param_values
            .iter()
            .map(|v| format!("\"{}\"", escape(&format!("{v:?}"))))),
        r.ssg_units,
    )
}

/// The deterministic body shared by single-app responses and batch
/// items: app identity, counts, and the per-sink reports. Excludes
/// wall-clock time, engine-wide cache counters, and fetch outcome.
fn analysis_fields(a: &AppAnalysis) -> String {
    format!(
        "{},{},\"located\":{},\"skipped\":{},\"sinks_analyzed\":{},\"vulnerable\":{},\"reports\":{}",
        str_field("app", &a.app_id),
        str_field("name", &a.app_name),
        a.report.sink_cache.located,
        a.report.sink_cache.skipped,
        a.report.sinks_analyzed(),
        a.report.vulnerable_sinks().len(),
        arr(a.report.sink_reports.iter().map(sink_report_json)),
    )
}

/// Renders a single-app response (`op` is echoed: `"analyze"`,
/// `"query"`, or `"analyze_delta"` — the body is the same shape for all
/// three, which is what lets CI byte-diff a delta-warm server against a
/// from-scratch one).
pub fn render_analysis(id: u64, op: &str, a: &AppAnalysis) -> String {
    format!(
        "{{\"id\":{id},{},{}}}",
        str_field("op", op),
        analysis_fields(a)
    )
}

/// Renders a batch response: one result object (or error object) per
/// requested app, in request order.
pub fn render_batch(id: u64, items: &[Result<AppAnalysis, ServiceError>]) -> String {
    let rendered = items.iter().map(|item| match item {
        Ok(a) => format!("{{{}}}", analysis_fields(a)),
        Err(e) => format!("{{{}}}", str_field("error", &e.to_string())),
    });
    format!(
        "{{\"id\":{id},{},\"results\":{}}}",
        str_field("op", "batch"),
        arr(rendered)
    )
}

/// Renders an error response.
pub fn render_error(id: u64, message: &str) -> String {
    format!("{{\"id\":{id},{}}}", str_field("error", message))
}

/// Renders the deterministic deadline error **with the measured queue
/// wait** — the operator sees how far past admission the request sat,
/// not just that it expired. Wall-clock, so deadline-carrying requests
/// stay excluded from replay-diffed traces (they always were: expiry
/// itself is timing-dependent).
pub fn render_deadline_error(id: u64, queue_wait_ms: u64) -> String {
    format!(
        "{{\"id\":{id},{},\"queue_wait_ms\":{queue_wait_ms}}}",
        str_field("error", "deadline exceeded")
    )
}

/// Renders a metrics response: the aggregate registry snapshot plus the
/// per-shard views (`null` where a shard is dead). Both are rendered by
/// [`RegistrySnapshot::render_json`] — the same single render path the
/// stderr stat dumps decode from.
pub fn render_metrics(
    id: u64,
    aggregate: &RegistrySnapshot,
    shards: &[Option<RegistrySnapshot>],
) -> String {
    let per_shard = arr(shards.iter().map(|s| match s {
        Some(snap) => snap.render_json(),
        None => "null".into(),
    }));
    format!(
        "{{\"id\":{id},{},\"aggregate\":{},\"shards\":{}}}",
        str_field("op", "metrics"),
        aggregate.render_json(),
        per_shard,
    )
}

/// Renders a stats response: the service's request counters plus the
/// store's per-tier counters (memory hits, disk hits/misses/
/// invalidations, bytes written). Operator-facing, not replay-stable.
pub fn render_stats(id: u64, stats: &crate::service::ServiceStats) -> String {
    let s = &stats.store;
    format!(
        "{{\"id\":{id},{},\"requests\":{},\"analyze\":{},\"query\":{},\"batch\":{},\
         \"errors\":{},\"peak_in_flight\":{},\"store\":{{\"hits\":{},\"misses\":{},\
         \"coalesced\":{},\"loads\":{},\"load_failures\":{},\"evictions\":{},\
         \"bytes_evicted\":{},\"disk_hits\":{},\"disk_misses\":{},\
         \"disk_invalidations\":{},\"disk_writes\":{},\"disk_bytes_written\":{},\
         \"disk_write_failures\":{},\"resident_bytes\":{},\"resident_apps\":{},\
         \"peak_resident_bytes\":{}}}}}",
        str_field("op", "stats"),
        stats.requests,
        stats.analyze_requests,
        stats.query_requests,
        stats.batch_requests,
        stats.errors,
        stats.peak_in_flight,
        s.hits,
        s.misses,
        s.coalesced,
        s.loads,
        s.load_failures,
        s.evictions,
        s.bytes_evicted,
        s.disk_hits,
        s.disk_misses,
        s.disk_invalidations,
        s.disk_writes,
        s.disk_bytes_written,
        s.disk_write_failures,
        s.resident_bytes,
        s.resident_apps,
        s.peak_resident_bytes,
    )
}

/// Renders a put_version acknowledgement: the new version number plus
/// the ground-truth delta class counts — all pure functions of (current
/// version, seed), so update traces replay byte-for-byte.
pub fn render_put_version(id: u64, o: &crate::service::PutVersionOutcome) -> String {
    format!(
        "{{\"id\":{id},{},{},\"version\":{},\"classes_changed\":{},\"classes_added\":{},\
         \"classes_removed\":{}}}",
        str_field("op", "put_version"),
        str_field("app", &o.app_id),
        o.version,
        o.classes_changed,
        o.classes_added,
        o.classes_removed,
    )
}

// ---------------------------------------------------------------------
// The typed reply
// ---------------------------------------------------------------------

/// The response half of the [`Op`]/[`Reply`] pair: everything the
/// server can say, as one typed enum with [`Reply::encode`] as the
/// single wire encoder shared by the JSONL stdin/stdout loop, the
/// length-framed socket transport, and the shard pool.
#[derive(Debug)]
pub enum Reply {
    /// A single-app analysis. The echoed `op` string (`"analyze"`,
    /// `"query"`, or `"analyze_delta"`) is the only part that varies —
    /// the body renders identically, which is what lets delta responses
    /// diff byte-for-byte against from-scratch ones.
    Analysis {
        /// The request id, echoed.
        id: u64,
        /// The op name to echo.
        op: &'static str,
        /// The analysis to render.
        analysis: AppAnalysis,
    },
    /// A batch response: one result object (or error object) per
    /// requested app, in request order.
    Batch {
        /// The request id, echoed.
        id: u64,
        /// Per-app outcomes, in request order.
        items: Vec<Result<AppAnalysis, ServiceError>>,
    },
    /// Service + store counter snapshot.
    Stats {
        /// The request id, echoed.
        id: u64,
        /// The counters to render.
        stats: crate::service::ServiceStats,
    },
    /// Metrics-registry snapshots: the aggregate plus per-shard views.
    Metrics {
        /// The request id, echoed.
        id: u64,
        /// The cross-shard aggregate snapshot.
        aggregate: RegistrySnapshot,
        /// Per-shard snapshots (`None` renders `null` for dead shards).
        shards: Vec<Option<RegistrySnapshot>>,
    },
    /// Acknowledgement of a published app version.
    PutVersion {
        /// The request id, echoed.
        id: u64,
        /// The deterministic outcome fields.
        outcome: crate::service::PutVersionOutcome,
    },
    /// A deterministic error.
    Error {
        /// The request id, echoed.
        id: u64,
        /// The error message.
        message: String,
    },
    /// The deadline-exceeded error, with the measured queue wait.
    DeadlineExpired {
        /// The request id, echoed.
        id: u64,
        /// How long the request sat queued, in milliseconds.
        queue_wait_ms: u64,
    },
    /// No output — admin ops acknowledge silently so traces spliced
    /// with admin lines still diff byte-for-byte against any golden.
    Silent,
}

impl Reply {
    /// Encodes the reply as its wire line — the one encode path every
    /// transport shares. `None` means "send nothing": the JSONL loop
    /// prints no line and the framed transport sends an empty frame.
    /// Each arm delegates to the corresponding public renderer, so the
    /// bytes are exactly what the pre-enum render functions produced.
    pub fn encode(&self) -> Option<String> {
        match self {
            Reply::Analysis { id, op, analysis } => Some(render_analysis(*id, op, analysis)),
            Reply::Batch { id, items } => Some(render_batch(*id, items)),
            Reply::Stats { id, stats } => Some(render_stats(*id, stats)),
            Reply::Metrics {
                id,
                aggregate,
                shards,
            } => Some(render_metrics(*id, aggregate, shards)),
            Reply::PutVersion { id, outcome } => Some(render_put_version(*id, outcome)),
            Reply::Error { id, message } => Some(render_error(*id, message)),
            Reply::DeadlineExpired { id, queue_wait_ms } => {
                Some(render_deadline_error(*id, *queue_wait_ms))
            }
            Reply::Silent => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse_json("null").unwrap(), Json::Null);
        assert_eq!(parse_json(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse_json("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            parse_json("\"a\\n\\\"b\\u0041\"").unwrap(),
            Json::Str("a\n\"bA".into())
        );
        // Astral-plane characters arrive as surrogate pairs.
        assert_eq!(
            parse_json("\"\\ud83d\\ude00!\"").unwrap(),
            Json::Str("\u{1F600}!".into())
        );
        for bad in ["\"\\ud83d\"", "\"\\ud83d\\u0041\"", "\"\\ude00\""] {
            assert!(parse_json(bad).is_err(), "{bad:?}: lone surrogates reject");
        }
        let v = parse_json("{\"xs\":[1,2],\"s\":\"ok\",\"b\":false}").unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("ok"));
        assert_eq!(
            v.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(v.get("b"), Some(&Json::Bool(false)));
        assert_eq!(parse_json("[]").unwrap(), Json::Arr(vec![]));
        assert_eq!(parse_json("{}").unwrap(), Json::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"open", "nan"] {
            assert!(parse_json(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn escape_round_trips_through_the_parser() {
        let nasty = "line1\nline2\t\"quoted\" back\\slash \u{1} ünïcode";
        let rendered = format!("\"{}\"", escape(nasty));
        assert_eq!(parse_json(&rendered).unwrap(), Json::Str(nasty.into()));
    }

    #[test]
    fn parses_the_three_request_ops() {
        let r = parse_request("{\"id\":0,\"op\":\"analyze\",\"app\":\"3\"}").unwrap();
        assert_eq!(r.op, Op::Analyze { app: "3".into() });
        // Numeric app ids normalize to their decimal string.
        let r = parse_request("{\"id\":1,\"op\":\"analyze\",\"app\":3}").unwrap();
        assert_eq!(r.op, Op::Analyze { app: "3".into() });
        let r = parse_request("{\"id\":2,\"op\":\"query\",\"app\":\"0\",\"sinks\":[\"crypto\"]}")
            .unwrap();
        assert_eq!(
            r.op,
            Op::Query {
                app: "0".into(),
                detectors: vec!["crypto".into()]
            }
        );
        // Detector ids beyond the legacy classes parse too; unknown ids
        // are the service's responsibility, not the parser's.
        let r = parse_request("{\"id\":2,\"op\":\"query\",\"app\":\"0\",\"sinks\":[\"webview\"]}")
            .unwrap();
        assert_eq!(
            r.op,
            Op::Query {
                app: "0".into(),
                detectors: vec!["webview".into()]
            }
        );
        let r = parse_request("{\"id\":3,\"op\":\"batch\",\"apps\":[\"0\",1]}").unwrap();
        assert_eq!(
            r.op,
            Op::Batch {
                apps: vec!["0".into(), "1".into()]
            }
        );
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "{\"op\":\"analyze\",\"app\":\"0\"}", // missing id
            "{\"id\":0,\"app\":\"0\"}",           // missing op
            "{\"id\":0,\"op\":\"explode\"}",      // unknown op
            "{\"id\":0,\"op\":\"analyze\"}",      // missing app
            "{\"id\":0,\"op\":\"query\",\"app\":\"0\",\"sinks\":[1]}", // non-string detector id
            "{\"id\":0,\"op\":\"batch\"}",        // missing apps
            "{\"id\":-1,\"op\":\"analyze\",\"app\":\"0\"}", // negative id
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn workload_lines_parse_back() {
        use backdroid_appgen::workload::{WorkloadOp, WorkloadRequest};
        let lines = [
            workload_request_line(
                0,
                &WorkloadRequest {
                    app: 4,
                    op: WorkloadOp::Analyze,
                    deadline_ms: None,
                },
            ),
            workload_request_line(
                1,
                &WorkloadRequest {
                    app: 2,
                    op: WorkloadOp::Query(vec!["crypto".into(), "ssl".into()]),
                    deadline_ms: Some(40),
                },
            ),
            workload_request_line(
                2,
                &WorkloadRequest {
                    app: 1,
                    op: WorkloadOp::Batch(vec![0, 3]),
                    deadline_ms: None,
                },
            ),
        ];
        let parsed: Vec<Request> = lines
            .iter()
            .map(|l| parse_request(l).expect("trace lines must parse"))
            .collect();
        assert_eq!(parsed[0].op, Op::Analyze { app: "4".into() });
        assert_eq!(
            parsed[1].op,
            Op::Query {
                app: "2".into(),
                detectors: vec!["crypto".into(), "ssl".into()]
            }
        );
        assert_eq!(
            parsed[2].op,
            Op::Batch {
                apps: vec!["1".into(), "0".into(), "3".into()]
            }
        );
        assert_eq!(parsed[0].deadline_ms, None);
        assert_eq!(
            parsed[1].deadline_ms,
            Some(40),
            "deadline survives the wire"
        );
    }

    #[test]
    fn admin_ops_and_deadlines_parse() {
        let r = parse_request("{\"id\":9,\"op\":\"kill_shard\",\"shard\":2}").unwrap();
        assert_eq!(r.op, Op::KillShard { shard: 2 });
        let r = parse_request("{\"id\":10,\"op\":\"restart_shard\",\"shard\":0}").unwrap();
        assert_eq!(r.op, Op::RestartShard { shard: 0 });
        let r = parse_request("{\"id\":0,\"op\":\"analyze\",\"app\":\"1\",\"deadline_ms\":25}")
            .unwrap();
        assert_eq!(r.deadline_ms, Some(25));
        for bad in [
            "{\"id\":9,\"op\":\"kill_shard\"}",
            "{\"id\":9,\"op\":\"kill_shard\",\"shard\":-1}",
            "{\"id\":0,\"op\":\"analyze\",\"app\":\"1\",\"deadline_ms\":\"soon\"}",
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn stats_op_parses_and_renders_valid_json() {
        let r = parse_request("{\"id\":9,\"op\":\"stats\"}").unwrap();
        assert_eq!(r.op, Op::Stats);
        let line = render_stats(9, &crate::service::ServiceStats::default());
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(9));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("stats"));
        let store = v.get("store").expect("store object");
        for key in [
            "hits",
            "disk_hits",
            "disk_misses",
            "disk_invalidations",
            "disk_bytes_written",
            "resident_bytes",
        ] {
            assert!(store.get(key).and_then(Json::as_u64).is_some(), "{key}");
        }
    }

    #[test]
    fn metrics_op_parses_and_renders_valid_json() {
        let r = parse_request("{\"id\":4,\"op\":\"metrics\"}").unwrap();
        assert_eq!(r.op, Op::Metrics);
        let registry = backdroid_obs::MetricsRegistry::new();
        registry.counter("service_requests_total").add(3);
        registry.histogram("request_hit_us").record(100);
        let snap = registry.snapshot();
        let line = render_metrics(4, &snap, &[Some(snap.clone()), None]);
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(4));
        assert_eq!(v.get("op").and_then(Json::as_str), Some("metrics"));
        let agg = v.get("aggregate").expect("aggregate object");
        assert_eq!(
            agg.get("service_requests_total")
                .and_then(|m| m.get("value"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            agg.get("request_hit_us")
                .and_then(|m| m.get("type"))
                .and_then(Json::as_str),
            Some("histogram")
        );
        let shards = v.get("shards").and_then(Json::as_arr).expect("shards");
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[1], Json::Null, "dead shard renders null");
    }

    #[test]
    fn deadline_error_carries_the_measured_wait() {
        let line = render_deadline_error(3, 41);
        let v = parse_json(&line).unwrap();
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("deadline exceeded")
        );
        assert_eq!(v.get("queue_wait_ms").and_then(Json::as_u64), Some(41));
    }

    #[test]
    fn error_rendering_is_valid_json() {
        let line = render_error(7, "load failed: app index 99 out of range");
        let v = parse_json(&line).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(7));
        assert!(v.get("error").and_then(Json::as_str).is_some());
    }
}
