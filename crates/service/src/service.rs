//! The serving front end: per-detector queries against the resident
//! [`AppStore`], fanned out over the existing
//! [`Backdroid::analyze_artifacts`] + `intra_threads` machinery, with
//! per-request accounting aggregated atomically (the same pattern as
//! `CacheStats`).
//!
//! Every response is a pure function of (app, requested detectors):
//! the store only changes *where* the artifacts come from — warm image
//! vs cold load — never what the analysis reports. That is the
//! determinism contract `backdroid-serve` and the CI service-smoke leg
//! enforce byte-for-byte against golden direct-analysis runs.

use crate::store::{AppStore, Fetch, StoreStats};
use backdroid_appgen::benchset::{bench_app, BenchsetConfig};
use backdroid_appgen::mutate_version;
use backdroid_core::{
    apply_delta, AppArtifacts, AppReport, Backdroid, BackdroidOptions, BackendChoice,
    ChunkManifest, ChunkStore, DeltaBase, DeltaStats, DetectorRegistry,
};
use backdroid_obs::{Counter, Gauge, Histogram, MetricsRegistry, RegistrySnapshot};
use backdroid_search::TokenCache;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Byte budget for the resident app store (`0` caches nothing — the
    /// direct-analysis golden mode).
    pub budget_bytes: u64,
    /// Search backend for every loaded app image.
    pub backend: BackendChoice,
    /// Intra-app sink-task scheduler width per analysis (see
    /// [`BackdroidOptions::intra_threads`]).
    pub intra_threads: usize,
    /// Fan-out width for one batched multi-app request. Results are
    /// reassembled in request order, so any width is deterministic.
    pub batch_threads: usize,
    /// Optional snapshot directory enabling the store's disk tier:
    /// cold loads restore from versioned, checksummed snapshots and
    /// first parses persist them (see [`crate::store::DiskTier`]).
    /// Responses are byte-identical with or without it.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// The detectors this service instance runs. Defaults to the
    /// paper's set ([`DetectorRegistry::paper`]); query requests may
    /// restrict to a subset by detector id.
    pub detectors: DetectorRegistry,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            budget_bytes: 256 * 1024 * 1024,
            backend: BackendChoice::default(),
            intra_threads: 1,
            batch_threads: 4,
            snapshot_dir: None,
            detectors: DetectorRegistry::paper(),
        }
    }
}

/// Why a service request failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServiceError {
    /// The store's loader could not produce the app image.
    Load(String),
    /// The request itself was malformed (empty batch, …).
    BadRequest(String),
    /// A query named a detector id this service has not registered —
    /// a deterministic error response, never a silent non-verdict.
    UnknownDetector(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Load(m) => write!(f, "load failed: {m}"),
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::UnknownDetector(id) => write!(f, "unknown detector id {id:?}"),
        }
    }
}

impl std::error::Error for ServiceError {}

/// The deterministic outcome of a [`Service::put_version`] call: the
/// new version number plus the class-level delta the chunk-manifest
/// diff recorded. Pure functions of (current version, seed) — never
/// chunk-store I/O counts, which depend on cross-app dedup.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PutVersionOutcome {
    /// The app id the request named.
    pub app_id: String,
    /// The version now being served (the loader's pristine app is 1).
    pub version: u64,
    /// Classes present in both versions with different chunk keys.
    pub classes_changed: usize,
    /// Classes only the new version defines.
    pub classes_added: usize,
    /// Classes only the old version defined.
    pub classes_removed: usize,
}

/// One completed per-app analysis, plus how its image was served.
#[derive(Debug)]
pub struct AppAnalysis {
    /// The app id the request named.
    pub app_id: String,
    /// The resolved app (package) name.
    pub app_name: String,
    /// The full analysis report (deterministic fields only go on the
    /// wire — see [`crate::proto`]).
    pub report: AppReport,
    /// Warm hit, cold load, or coalesced onto another request's load.
    /// Never rendered into responses: with concurrent workers it depends
    /// on scheduling.
    pub fetch: Fetch,
}

/// Snapshot of the service's request counters plus the store's.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct ServiceStats {
    /// Requests accepted (analyze + query + batch).
    pub requests: u64,
    /// Full-registry single-app analyses.
    pub analyze_requests: u64,
    /// Sink-class-restricted single-app queries.
    pub query_requests: u64,
    /// Batched multi-app requests.
    pub batch_requests: u64,
    /// Requests that returned an error.
    pub errors: u64,
    /// Largest number of requests ever in flight at once (queue depth).
    pub peak_in_flight: u64,
    /// The app store's counters and residency.
    pub store: StoreStats,
}

impl ServiceStats {
    /// Reads the service-level counters (and, via
    /// [`StoreStats::from_metrics`], the store's) back out of a registry
    /// snapshot — the one decode path every stats view shares.
    pub fn from_metrics(snap: &RegistrySnapshot) -> ServiceStats {
        ServiceStats {
            requests: snap.value("service_requests_total"),
            analyze_requests: snap.value("service_analyze_total"),
            query_requests: snap.value("service_query_total"),
            batch_requests: snap.value("service_batch_total"),
            errors: snap.value("service_errors_total"),
            peak_in_flight: snap.value("service_peak_in_flight"),
            store: StoreStats::from_metrics(snap),
        }
    }

    /// Folds another service's counters into this one (see
    /// [`StoreStats::absorb`] for the aggregation semantics) — used by
    /// the shard pool to answer the `stats` op with fleet-wide totals.
    /// `peak_in_flight` sums, an upper bound on true simultaneous
    /// depth across shards.
    pub fn absorb(&mut self, other: &ServiceStats) {
        self.requests += other.requests;
        self.analyze_requests += other.analyze_requests;
        self.query_requests += other.query_requests;
        self.batch_requests += other.batch_requests;
        self.errors += other.errors;
        self.peak_in_flight += other.peak_in_flight;
        self.store.absorb(&other.store);
    }
}

/// The service's registry handles: request counters, queue-depth
/// gauges, per-fetch-tier latency histograms (µs), pipeline-phase
/// histograms (µs), and the search-work counters fed from each
/// report's [`backdroid_search::CacheStats`] delta.
struct Counters {
    requests: Counter,
    analyze_requests: Counter,
    query_requests: Counter,
    batch_requests: Counter,
    errors: Counter,
    in_flight: Gauge,
    peak_in_flight: Gauge,
    request_hit_us: Histogram,
    request_miss_us: Histogram,
    request_disk_us: Histogram,
    request_coalesced_us: Histogram,
    phase_locate_us: Histogram,
    phase_slice_us: Histogram,
    phase_verdict_us: Histogram,
    search_commands: Counter,
    search_cache_hits: Counter,
    search_lines_scanned: Counter,
    search_postings_touched: Counter,
    lazy_sections_materialized: Counter,
    put_version_requests: Counter,
    delta_requests: Counter,
    update_latency_us: Histogram,
    delta_analysis_us: Histogram,
    chunks_reused: Counter,
    chunks_written: Counter,
    chunk_fallbacks: Counter,
    classes_retokenized: Counter,
    sinks_reused: Counter,
    sinks_reanalyzed: Counter,
    delta_full_fallbacks: Counter,
}

impl Counters {
    fn register(registry: &MetricsRegistry) -> Counters {
        Counters {
            requests: registry.counter("service_requests_total"),
            analyze_requests: registry.counter("service_analyze_total"),
            query_requests: registry.counter("service_query_total"),
            batch_requests: registry.counter("service_batch_total"),
            errors: registry.counter("service_errors_total"),
            in_flight: registry.gauge("service_in_flight"),
            peak_in_flight: registry.gauge("service_peak_in_flight"),
            request_hit_us: registry.histogram("request_hit_us"),
            request_miss_us: registry.histogram("request_miss_us"),
            request_disk_us: registry.histogram("request_disk_us"),
            request_coalesced_us: registry.histogram("request_coalesced_us"),
            phase_locate_us: registry.histogram("phase_locate_us"),
            phase_slice_us: registry.histogram("phase_slice_us"),
            phase_verdict_us: registry.histogram("phase_verdict_us"),
            search_commands: registry.counter("search_commands_total"),
            search_cache_hits: registry.counter("search_cache_hits_total"),
            search_lines_scanned: registry.counter("search_lines_scanned_total"),
            search_postings_touched: registry.counter("search_postings_touched_total"),
            lazy_sections_materialized: registry.counter("lazy_sections_materialized_total"),
            put_version_requests: registry.counter("service_put_version_total"),
            delta_requests: registry.counter("service_analyze_delta_total"),
            update_latency_us: registry.histogram("update_latency_us"),
            delta_analysis_us: registry.histogram("delta_analysis_us"),
            chunks_reused: registry.counter("chunks_reused_total"),
            chunks_written: registry.counter("chunks_written_total"),
            chunk_fallbacks: registry.counter("chunk_full_fallback_total"),
            classes_retokenized: registry.counter("update_classes_retokenized_total"),
            sinks_reused: registry.counter("sinks_reused_total"),
            sinks_reanalyzed: registry.counter("sinks_reanalyzed_total"),
            delta_full_fallbacks: registry.counter("delta_full_fallback_total"),
        }
    }
}

/// Decrements `in_flight` when the request scope ends, whatever path it
/// took out.
struct InFlightGuard<'a>(&'a Counters);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.sub(1);
    }
}

/// Everything the incremental-update path keeps per app: the pinned
/// current image (authoritative over the store after a `put_version` —
/// the loader still produces the pristine version), the previous
/// version's image, the per-class token cache feeding the next
/// incremental index build, and the last traced analysis base with the
/// version it describes.
#[derive(Default)]
struct VersionState {
    /// Version currently served; `0` = never touched by the update
    /// path (normalized to 1 on first contact).
    version: u64,
    /// The image being served, held strongly so eviction can never
    /// regress a plain `analyze` to the loader's pristine version.
    current: Option<Arc<AppArtifacts>>,
    /// The previously served image — the `old` side of a delta run.
    prev: Option<Arc<AppArtifacts>>,
    /// Chunk-keyed token streams of the current version's classes.
    token_cache: TokenCache,
    /// Per-site outcomes + traces from the last traced analysis.
    base: Option<Arc<DeltaBase>>,
    /// Which version `base` was captured against.
    base_version: u64,
}

/// The resident multi-app analysis service. `Send + Sync`; share one
/// instance across every request-handling thread.
pub struct Service {
    store: AppStore,
    base: BackdroidOptions,
    batch_threads: usize,
    /// Content-addressed per-class chunk store under
    /// `<snapshot_dir>/chunks`; absent without a snapshot directory
    /// (updates then skip persistence but behave identically).
    chunks: Option<ChunkStore>,
    versions: Mutex<HashMap<String, VersionState>>,
    /// Per-app update locks: `put_version` is a read-mutate-publish over
    /// the served version, so two concurrent updates to the same app
    /// must chain, not both build on the version they jointly read.
    /// Distinct apps update in parallel.
    update_locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    registry: Arc<MetricsRegistry>,
    counters: Counters,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("stats", &self.stats())
            .finish()
    }
}

impl Service {
    /// Creates a service over a custom app loader. The loader builds the
    /// artifacts for a cold app id; the service fixes the search backend
    /// and scheduler width via `cfg`-derived [`BackdroidOptions`].
    pub fn new(
        cfg: ServiceConfig,
        loader: impl Fn(&str) -> Result<AppArtifacts, String> + Send + Sync + 'static,
    ) -> Self {
        let registry = Arc::new(MetricsRegistry::new());
        let disk = cfg
            .snapshot_dir
            .as_ref()
            .map(|dir| crate::store::DiskTier::new(dir, cfg.backend));
        let store = AppStore::over_registry(cfg.budget_bytes, disk, Arc::clone(&registry), loader);
        let counters = Counters::register(&registry);
        let chunks = cfg
            .snapshot_dir
            .as_ref()
            .and_then(|dir| ChunkStore::open(dir.join("chunks")).ok());
        Service {
            store,
            chunks,
            versions: Mutex::default(),
            update_locks: Mutex::default(),
            base: BackdroidOptions {
                backend: cfg.backend,
                intra_threads: cfg.intra_threads.max(1),
                detectors: cfg.detectors,
                ..BackdroidOptions::default()
            },
            batch_threads: cfg.batch_threads.max(1),
            registry,
            counters,
        }
    }

    /// Creates a service whose app ids are decimal indices into the
    /// `modern_apps` benchmark set (`"0"` … `"count-1"`) — what
    /// `backdroid-serve` and the throughput bench drive.
    pub fn over_benchset(bench: BenchsetConfig, cfg: ServiceConfig) -> Self {
        let backend = cfg.backend;
        Self::new(cfg, move |id: &str| {
            let i: usize = id
                .parse()
                .map_err(|_| format!("app id {id:?} is not a benchset index"))?;
            if i >= bench.count {
                return Err(format!(
                    "app index {i} out of range (benchset has {} apps)",
                    bench.count
                ));
            }
            let ba = bench_app(i, bench);
            Ok(AppArtifacts::with_backend(
                ba.app.program,
                ba.app.manifest,
                backend,
            ))
        })
    }

    /// The underlying app store (budget, residency, LRU order, stats).
    pub fn store(&self) -> &AppStore {
        &self.store
    }

    /// Full-registry analysis of one app.
    pub fn analyze_app(&self, app_id: &str) -> Result<AppAnalysis, ServiceError> {
        let _guard = self.begin_request(&self.counters.analyze_requests);
        self.run(app_id, self.base.detectors.clone())
    }

    /// Analysis of one app restricted to the given detector ids. An
    /// empty id list means every registered detector (same result as
    /// [`Service::analyze_app`]). An unknown id is a deterministic
    /// [`ServiceError::UnknownDetector`], never a silent non-verdict.
    pub fn query_detectors<S: AsRef<str>>(
        &self,
        app_id: &str,
        ids: &[S],
    ) -> Result<AppAnalysis, ServiceError> {
        let _guard = self.begin_request(&self.counters.query_requests);
        let detectors = if ids.is_empty() {
            self.base.detectors.clone()
        } else {
            self.base.detectors.select(ids).map_err(|e| {
                self.counters.errors.inc();
                match e {
                    backdroid_core::DetectorError::UnknownDetector(id) => {
                        ServiceError::UnknownDetector(id)
                    }
                    other => ServiceError::BadRequest(other.to_string()),
                }
            })?
        };
        self.run(app_id, detectors)
    }

    /// Batched multi-app analysis: fans the apps out over
    /// `batch_threads` workers against the shared store and returns the
    /// per-app outcomes **in request order** — deterministic for any
    /// width.
    pub fn analyze_batch(&self, app_ids: &[String]) -> Vec<Result<AppAnalysis, ServiceError>> {
        let _guard = self.begin_request(&self.counters.batch_requests);
        if app_ids.is_empty() {
            self.counters.errors.inc();
            return vec![Err(ServiceError::BadRequest("empty batch".into()))];
        }
        let threads = self.batch_threads.clamp(1, app_ids.len());
        let registry = self.base.detectors.clone();
        if threads <= 1 {
            return app_ids
                .iter()
                .map(|id| self.run(id, registry.clone()))
                .collect();
        }
        let next = AtomicU64::new(0);
        let mut indexed: Vec<(usize, Result<AppAnalysis, ServiceError>)> =
            std::thread::scope(|scope| {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                                if i >= app_ids.len() {
                                    break;
                                }
                                local.push((i, self.run(&app_ids[i], registry.clone())));
                            }
                            local
                        })
                    })
                    .collect();
                workers
                    .into_iter()
                    .flat_map(|w| w.join().expect("batch worker panicked"))
                    .collect()
            });
        indexed.sort_by_key(|&(i, _)| i);
        indexed.into_iter().map(|(_, r)| r).collect()
    }

    /// Publishes version *n+1* of an app: mutates the current program
    /// with the deterministic update generator, records the chunk-level
    /// delta, persists the new version's chunks (when a chunk store is
    /// configured) and round-trips the program through
    /// [`apply_delta`] — unchanged classes cloned from the resident
    /// prior, changed/added ones decoded from their chunks — falling
    /// back to the in-memory mutated program if any chunk is missing or
    /// corrupt. The new search index is built through the per-class
    /// token cache, so only touched classes re-tokenize, and the store
    /// swaps to the new image under its epoch guard.
    pub fn put_version(&self, app_id: &str, seed: u64) -> Result<PutVersionOutcome, ServiceError> {
        let _guard = self.begin_request(&self.counters.put_version_requests);
        let app_lock = {
            let mut locks = self.update_locks.lock().expect("update locks poisoned");
            Arc::clone(locks.entry(app_id.to_string()).or_default())
        };
        let _update_guard = app_lock.lock().expect("update lock poisoned");
        let started = Instant::now();
        let (current, _) = self.fetch_current(app_id)?;
        let (mutated, _mutation) = mutate_version(current.program(), seed);
        let prior_manifest = current.chunk_manifest().clone();
        let next_manifest = ChunkManifest::of_program(&mutated);
        let delta = prior_manifest.diff(&next_manifest);
        let c = &self.counters;
        c.chunks_reused.add(delta.unchanged.len() as u64);
        c.chunks_written
            .add((delta.changed.len() + delta.added.len()) as u64);
        let program = match &self.chunks {
            Some(store) => {
                let _ = store.put_program(&mutated);
                match apply_delta(current.program(), &prior_manifest, &next_manifest, store) {
                    Ok(p) => p,
                    Err(_) => {
                        // Garbage or truncation in the chunk store:
                        // serve the full in-memory program instead —
                        // same bytes, no chunk reuse.
                        c.chunk_fallbacks.inc();
                        mutated
                    }
                }
            }
            None => mutated,
        };
        let mut versions = self.versions.lock().expect("version map poisoned");
        let state = versions.entry(app_id.to_string()).or_default();
        if state.version == 0 {
            state.version = 1;
        }
        let (artifacts, next_cache, tokens_reused) = AppArtifacts::with_backend_cached(
            program,
            current.manifest().clone(),
            self.base.backend,
            &state.token_cache,
        );
        c.classes_retokenized
            .add((next_cache.len().saturating_sub(tokens_reused)) as u64);
        let arc = self.store.put(app_id, artifacts);
        state.version += 1;
        state.prev = Some(current);
        state.current = Some(arc);
        state.token_cache = next_cache;
        if state.base_version + 1 != state.version {
            // The base no longer describes the version just displaced;
            // the next delta run re-captures from scratch.
            state.base = None;
        }
        let outcome = PutVersionOutcome {
            app_id: app_id.to_string(),
            version: state.version,
            classes_changed: delta.changed.len(),
            classes_added: delta.added.len(),
            classes_removed: delta.removed.len(),
        };
        drop(versions);
        c.update_latency_us
            .record(started.elapsed().as_micros() as u64);
        Ok(outcome)
    }

    /// Incremental full-registry analysis of the app's current version.
    /// With a traced base from the previous version, only sinks whose
    /// recorded dependencies intersect the update are re-analyzed
    /// ([`Backdroid::analyze_delta`]); without one, a full traced run
    /// captures the base for next time. Either way the report — and
    /// therefore the wire response body — is **byte-identical** to a
    /// from-scratch analysis of the same version.
    pub fn analyze_delta(&self, app_id: &str) -> Result<AppAnalysis, ServiceError> {
        let _guard = self.begin_request(&self.counters.delta_requests);
        let started = Instant::now();
        let (current, fetch) = self.fetch_current(app_id)?;
        let (old, base) = {
            let versions = self.versions.lock().expect("version map poisoned");
            match versions.get(app_id) {
                Some(state) if state.base.is_some() => {
                    let base = state.base.clone();
                    if state.base_version == state.version.max(1) {
                        // Base describes the served version: an identity
                        // delta reuses every verdict.
                        (Some(Arc::clone(&current)), base)
                    } else if state.base_version + 1 == state.version {
                        (state.prev.clone(), base)
                    } else {
                        (None, None)
                    }
                }
                _ => (None, None),
            }
        };
        let tool = Backdroid::with_options(self.base.clone());
        let sections_before = current.materialized_sections();
        let (report, new_base, stats) = match old {
            Some(old) => tool.analyze_delta(&old, base.as_deref(), &current),
            None => {
                let (report, new_base) = tool.analyze_artifacts_traced(&current);
                let reanalyzed = new_base.site_count();
                (
                    report,
                    new_base,
                    DeltaStats {
                        full_fallback: true,
                        sinks_reused: 0,
                        sinks_reanalyzed: reanalyzed,
                    },
                )
            }
        };
        let c = &self.counters;
        if stats.full_fallback {
            c.delta_full_fallbacks.inc();
        }
        c.sinks_reused.add(stats.sinks_reused as u64);
        c.sinks_reanalyzed.add(stats.sinks_reanalyzed as u64);
        c.delta_analysis_us
            .record(started.elapsed().as_micros() as u64);
        c.search_commands.add(report.cache_stats.commands);
        c.search_cache_hits.add(report.cache_stats.hits);
        c.search_lines_scanned.add(report.cache_stats.lines_scanned);
        c.search_postings_touched
            .add(report.cache_stats.postings_touched);
        c.lazy_sections_materialized.add(
            current
                .materialized_sections()
                .saturating_sub(sections_before),
        );
        {
            let mut versions = self.versions.lock().expect("version map poisoned");
            let state = versions.entry(app_id.to_string()).or_default();
            if state.version == 0 {
                state.version = 1;
            }
            if state.current.is_none() {
                state.current = Some(Arc::clone(&current));
            }
            state.base = Some(Arc::new(new_base));
            state.base_version = state.version;
        }
        Ok(AppAnalysis {
            app_id: app_id.to_string(),
            app_name: current.manifest().package().to_string(),
            report,
            fetch,
        })
    }

    /// The metrics registry the service and its store publish into —
    /// what the wire `metrics` op and the `--trace-out` exporter read.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Counter snapshot (service + store), decoded from the registry.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats::from_metrics(&self.registry.snapshot())
    }

    fn begin_request(&self, kind: &Counter) -> InFlightGuard<'_> {
        let c = &self.counters;
        c.requests.inc();
        kind.inc();
        let depth = c.in_flight.add_fetch(1);
        c.peak_in_flight.set_max(depth);
        InFlightGuard(c)
    }

    /// The image currently served for `app_id`: the version pinned by
    /// the update path if one exists (counted as a warm hit — it is
    /// held in memory), else whatever tier of the store answers. Every
    /// analyzing op goes through this, so `analyze`, `query`, and
    /// `analyze_delta` always agree on which version an app is at.
    fn fetch_current(&self, app_id: &str) -> Result<(Arc<AppArtifacts>, Fetch), ServiceError> {
        let pinned = {
            let versions = self.versions.lock().expect("version map poisoned");
            versions.get(app_id).and_then(|s| s.current.clone())
        };
        if let Some(current) = pinned {
            return Ok((current, Fetch::Hit));
        }
        self.store.get(app_id).map_err(|e| {
            self.counters.errors.inc();
            ServiceError::Load(e)
        })
    }

    /// Fetches the image (warm or cold) and runs one analysis with the
    /// given detector registry, recording per-tier latency, pipeline
    /// phase timings, search work, and lazy-restore materialization into
    /// the registry. All of it is observability-only: the returned
    /// [`AppAnalysis`] is untouched by the instrumentation.
    fn run(&self, app_id: &str, detectors: DetectorRegistry) -> Result<AppAnalysis, ServiceError> {
        let started = Instant::now();
        let (artifacts, fetch) = self.fetch_current(app_id)?;
        let sections_before = artifacts.materialized_sections();
        let tool = Backdroid::with_options(BackdroidOptions {
            detectors,
            ..self.base.clone()
        });
        let report = tool.analyze_artifacts(&artifacts);
        let c = &self.counters;
        let elapsed_us = started.elapsed().as_micros() as u64;
        match fetch {
            Fetch::Hit => c.request_hit_us.record(elapsed_us),
            Fetch::Miss => c.request_miss_us.record(elapsed_us),
            Fetch::Disk => c.request_disk_us.record(elapsed_us),
            Fetch::Coalesced => c.request_coalesced_us.record(elapsed_us),
        }
        c.phase_locate_us.record(report.phases.locate_ns / 1_000);
        c.phase_slice_us.record(report.phases.slice_ns / 1_000);
        c.phase_verdict_us.record(report.phases.verdict_ns / 1_000);
        c.search_commands.add(report.cache_stats.commands);
        c.search_cache_hits.add(report.cache_stats.hits);
        c.search_lines_scanned.add(report.cache_stats.lines_scanned);
        c.search_postings_touched
            .add(report.cache_stats.postings_touched);
        c.lazy_sections_materialized.add(
            artifacts
                .materialized_sections()
                .saturating_sub(sections_before),
        );
        Ok(AppAnalysis {
            app_id: app_id.to_string(),
            app_name: artifacts.manifest().package().to_string(),
            report,
            fetch,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_service(budget: u64) -> Service {
        Service::over_benchset(
            BenchsetConfig::sized(6, 0.04),
            ServiceConfig {
                budget_bytes: budget,
                ..ServiceConfig::default()
            },
        )
    }

    #[test]
    fn analyze_twice_is_warm_and_identical() {
        let service = small_service(u64::MAX);
        let a = service.analyze_app("1").unwrap();
        let b = service.analyze_app("1").unwrap();
        assert_eq!(a.fetch, Fetch::Miss);
        assert_eq!(b.fetch, Fetch::Hit);
        assert_eq!(a.app_name, b.app_name);
        assert_eq!(a.report.sink_reports, b.report.sink_reports);
        let stats = service.stats();
        assert_eq!(stats.analyze_requests, 2);
        assert_eq!(stats.store.loads, 1);
    }

    #[test]
    fn query_restricts_the_registry() {
        let service = small_service(u64::MAX);
        let all = service.analyze_app("0").unwrap();
        let crypto = service.query_detectors("0", &["crypto"]).unwrap();
        let ssl = service.query_detectors("0", &["ssl"]).unwrap();
        assert!(crypto
            .report
            .sink_reports
            .iter()
            .all(|r| r.sink_id.starts_with("crypto.")));
        assert!(ssl
            .report
            .sink_reports
            .iter()
            .all(|r| r.sink_id.starts_with("ssl.")));
        assert_eq!(
            crypto.report.sink_reports.len() + ssl.report.sink_reports.len(),
            all.report.sink_reports.len(),
            "the two detectors partition the full registry's reports"
        );
        // Empty id list = every registered detector.
        let empty = service.query_detectors("0", &[] as &[&str]).unwrap();
        assert_eq!(empty.report.sink_reports, all.report.sink_reports);
    }

    #[test]
    fn unknown_detector_ids_error_deterministically() {
        let service = small_service(u64::MAX);
        let before = service.stats().errors;
        let err = service
            .query_detectors("0", &["crypto", "sms"])
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownDetector("sms".into()));
        assert_eq!(err.to_string(), "unknown detector id \"sms\"");
        assert_eq!(service.stats().errors, before + 1);
        // Deterministic: asking again yields the identical error.
        assert_eq!(
            service
                .query_detectors("0", &["crypto", "sms"])
                .unwrap_err(),
            err
        );
    }

    #[test]
    fn batch_returns_results_in_request_order() {
        let service = small_service(u64::MAX);
        let ids: Vec<String> = ["3", "0", "3", "2"].iter().map(|s| s.to_string()).collect();
        let results = service.analyze_batch(&ids);
        assert_eq!(results.len(), 4);
        for (id, r) in ids.iter().zip(&results) {
            assert_eq!(&r.as_ref().unwrap().app_id, id);
        }
        assert_eq!(
            results[0].as_ref().unwrap().report.sink_reports,
            results[2].as_ref().unwrap().report.sink_reports,
            "same app twice in one batch agrees with itself"
        );
        assert_eq!(service.stats().store.loads, 3, "three distinct apps");
    }

    #[test]
    fn bad_ids_and_empty_batches_error() {
        let service = small_service(u64::MAX);
        assert!(matches!(
            service.analyze_app("99"),
            Err(ServiceError::Load(_))
        ));
        assert!(matches!(
            service.analyze_app("nope"),
            Err(ServiceError::Load(_))
        ));
        let batch = service.analyze_batch(&[]);
        assert!(matches!(batch[0], Err(ServiceError::BadRequest(_))));
        assert_eq!(service.stats().errors, 3);
    }

    /// Replays the same update chain on a fresh service and returns a
    /// plain from-scratch analysis of the final version — the oracle
    /// every delta result must match byte-for-byte.
    fn from_scratch(app: &str, seeds: &[u64]) -> AppAnalysis {
        let service = small_service(u64::MAX);
        for &s in seeds {
            service.put_version(app, s).unwrap();
        }
        service.analyze_app(app).unwrap()
    }

    /// The wire bytes of an analysis with id/op pinned, so two
    /// analyses compare on body content alone.
    fn body(a: &AppAnalysis) -> String {
        crate::proto::render_analysis(1, "analyze", a)
    }

    #[test]
    fn put_version_is_deterministic_and_counts_the_class_delta() {
        let service = small_service(u64::MAX);
        let v2 = service.put_version("1", 7).unwrap();
        assert_eq!(v2.version, 2);
        assert!(
            v2.classes_changed + v2.classes_added + v2.classes_removed > 0,
            "an update touches at least one class"
        );
        let v3 = service.put_version("1", 8).unwrap();
        assert_eq!(v3.version, 3);
        // The same seed chain on a fresh service reproduces the same
        // versions and the same per-class delta counts.
        let replay = small_service(u64::MAX);
        assert_eq!(replay.put_version("1", 7).unwrap(), v2);
        assert_eq!(replay.put_version("1", 8).unwrap(), v3);
    }

    #[test]
    fn analyze_delta_matches_from_scratch_at_every_version() {
        let service = small_service(u64::MAX);
        // v1: no base exists — the delta op falls back to a full traced
        // run and captures the base for the next update.
        let d1 = service.analyze_delta("1").unwrap();
        assert_eq!(body(&d1), body(&from_scratch("1", &[])));
        let seeds = [7u64, 8, 9];
        for (i, &seed) in seeds.iter().enumerate() {
            service.put_version("1", seed).unwrap();
            let delta = service.analyze_delta("1").unwrap();
            let fresh = from_scratch("1", &seeds[..=i]);
            assert_eq!(
                body(&delta),
                body(&fresh),
                "delta report diverged at version {}",
                i + 2
            );
        }
        let snap = service.metrics().snapshot();
        assert!(
            snap.value("delta_full_fallback_total") >= 1,
            "the v1 run lacked a base"
        );
        assert!(
            snap.value("chunks_reused_total") > 0,
            "most classes survive an update unchanged"
        );
    }

    /// First `n` seeds (from 0) whose mutation of the given benchset
    /// app chain is body-only — the shape eligible for verdict reuse.
    fn body_only_seeds(app_index: usize, n: usize) -> Vec<u64> {
        let bench = BenchsetConfig::sized(6, 0.04);
        let mut program = bench_app(app_index, bench).app.program;
        let mut seeds = Vec::new();
        let mut seed = 0u64;
        while seeds.len() < n {
            let (next, label) = mutate_version(&program, seed);
            if label.is_body_only() {
                seeds.push(seed);
                program = next;
            }
            seed += 1;
        }
        seeds
    }

    #[test]
    fn body_only_updates_reuse_prior_verdicts() {
        let seeds = body_only_seeds(1, 2);
        let service = small_service(u64::MAX);
        service.analyze_delta("1").unwrap(); // captures the v1 base
        let mut applied = Vec::new();
        for &seed in &seeds {
            service.put_version("1", seed).unwrap();
            applied.push(seed);
            let delta = service.analyze_delta("1").unwrap();
            assert_eq!(body(&delta), body(&from_scratch("1", &applied)));
        }
        let snap = service.metrics().snapshot();
        assert_eq!(
            snap.value("delta_full_fallback_total"),
            1,
            "only the v1 run lacked a base; body-only updates keep it"
        );
        assert!(
            snap.value("sinks_reused_total") > 0,
            "untouched sinks replay their prior verdicts"
        );
    }

    #[test]
    fn updates_survive_eviction_because_the_current_version_is_pinned() {
        // Zero budget and no disk tier: the store would re-run the
        // loader (which only knows v1) on every request. The service
        // pins the current version, so updates still stick.
        let service = small_service(0);
        service.analyze_app("1").unwrap();
        let v2 = service.put_version("1", 7).unwrap();
        assert_eq!(v2.version, 2);
        let a = service.analyze_app("1").unwrap();
        assert_eq!(a.fetch, Fetch::Hit, "the pinned image serves warm");
        let b = service.analyze_delta("1").unwrap();
        assert_eq!(body(&a), body(&b));
    }

    #[test]
    fn chunk_store_damage_falls_back_to_the_full_program() {
        let dir = std::env::temp_dir().join(format!(
            "backdroid-service-chunk-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let service = Service::over_benchset(
            BenchsetConfig::sized(6, 0.04),
            ServiceConfig {
                snapshot_dir: Some(dir.clone()),
                ..ServiceConfig::default()
            },
        );
        service.put_version("2", 11).unwrap();
        // Replace the chunk directory with a plain file: every chunk
        // write and read now fails, so the update must serve the
        // in-memory program instead of the chunk round-trip.
        let chunks = dir.join("chunks");
        std::fs::remove_dir_all(&chunks).unwrap();
        std::fs::write(&chunks, b"junk").unwrap();
        let v3 = service.put_version("2", 12).unwrap();
        assert_eq!(v3.version, 3);
        assert_eq!(
            service
                .metrics()
                .snapshot()
                .value("chunk_full_fallback_total"),
            1
        );
        // The fallback never changes what is served.
        let served = service.analyze_app("2").unwrap();
        assert_eq!(body(&served), body(&from_scratch("2", &[11, 12])));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
