//! `backdroid-serve` — the resident analysis service as a CLI, speaking
//! line-delimited JSON on stdin/stdout so CI (and shell pipelines) can
//! drive it deterministically.
//!
//! ```console
//! $ backdroid-serve --count 8 --code-permille 40 --emit-trace 60 --seed 7 > trace.jsonl
//! $ backdroid-serve --count 8 --code-permille 40 --budget-mb 64 --workers 4 < trace.jsonl
//! ```
//!
//! Responses are emitted **in request order** whatever `--workers` is,
//! and contain only deterministic fields, so the output for one trace is
//! byte-identical across worker counts, search backends, and store
//! budgets — `--direct` (a zero-budget store: every request cold-loads,
//! nothing stays resident) produces the golden direct-analysis run the
//! CI service-smoke leg diffs the others against. Service and store
//! statistics go to stderr at EOF.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig};
use backdroid_core::BackendChoice;
use backdroid_service::proto::{
    self, parse_json, parse_request, workload_request_line, Json, RequestOp,
};
use backdroid_service::{Service, ServiceConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::Mutex;

const USAGE: &str = "\
backdroid-serve — resident multi-app BackDroid analysis service (JSONL on stdin/stdout)

Benchset (the app universe; ids are decimal indices):
  --count N            apps in the backing benchset (default 24)
  --code-permille M    filler-code volume in thousandths (default 80)

Serving:
  --backend B          search backend: linear | indexed (default indexed)
  --budget-mb N        resident app-store byte budget (default 512)
  --direct             zero-budget store: every request cold-loads (golden mode)
  --workers N          request worker threads; output stays in request order (default 1)
  --intra-threads N    intra-app sink-task scheduler width (default 1)
  --snapshot-dir DIR   persistent disk tier: cold loads restore from versioned,
                       checksummed snapshots in DIR; first parses write them.
                       Responses are byte-identical with or without it.

Trace generation (prints a workload instead of serving):
  --emit-trace R       emit R seeded requests over the benchset and exit
  --seed S             workload seed (default 7)
  --zipf-permille Z    popularity skew, thousandths of s (default 1100)
  --query-permille Q   share of sink-class queries (default 300)
  --batch-permille B   share of multi-app batches (default 100)
";

/// The value following `--flag` (or embedded as `--flag=value`) in argv.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn usage_error(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("error: {flag} {value:?} is invalid — expected {expected}");
    std::process::exit(2)
}

fn parsed_arg<T: std::str::FromStr>(flag: &str, expected: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse::<T>()
            .unwrap_or_else(|_| usage_error(flag, &v, expected))
    })
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn benchset_from_args() -> BenchsetConfig {
    let count = parsed_arg::<usize>("--count", "a positive integer").unwrap_or(24);
    let permille =
        parsed_arg::<u32>("--code-permille", "an integer (1000 ≙ paper scale)").unwrap_or(80);
    BenchsetConfig::try_sized(count, permille as f64 / 1000.0).unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    })
}

fn main() {
    if has_flag("--help") || has_flag("-h") {
        print!("{USAGE}");
        return;
    }
    let bench = benchset_from_args();

    if let Some(requests) = parsed_arg::<usize>("--emit-trace", "a positive integer") {
        let cfg = WorkloadConfig {
            apps: bench.count,
            requests,
            seed: parsed_arg("--seed", "an integer").unwrap_or(7),
            zipf_permille: parsed_arg("--zipf-permille", "an integer").unwrap_or(1100),
            query_permille: parsed_arg("--query-permille", "an integer").unwrap_or(300),
            batch_permille: parsed_arg("--batch-permille", "an integer").unwrap_or(100),
        };
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for (i, req) in workload::generate(cfg).iter().enumerate() {
            writeln!(out, "{}", workload_request_line(i as u64, req)).expect("stdout closed");
        }
        return;
    }

    let backend = match arg_value("--backend") {
        Some(v) => BackendChoice::parse(&v)
            .unwrap_or_else(|| usage_error("--backend", &v, "\"linear\" or \"indexed\"")),
        None => BackendChoice::default(),
    };
    let budget_bytes = if has_flag("--direct") {
        0
    } else {
        parsed_arg::<u64>("--budget-mb", "a byte budget in MiB").unwrap_or(512) * 1024 * 1024
    };
    let workers = parsed_arg::<usize>("--workers", "a positive integer")
        .unwrap_or(1)
        .max(1);
    let service = Service::over_benchset(
        bench,
        ServiceConfig {
            budget_bytes,
            backend,
            intra_threads: parsed_arg::<usize>("--intra-threads", "a positive integer")
                .unwrap_or(1)
                .max(1),
            snapshot_dir: arg_value("--snapshot-dir").map(std::path::PathBuf::from),
            ..ServiceConfig::default()
        },
    );

    serve(&service, workers);

    let stats = service.stats();
    eprintln!(
        "requests={} (analyze={} query={} batch={}) errors={} peak_in_flight={}",
        stats.requests,
        stats.analyze_requests,
        stats.query_requests,
        stats.batch_requests,
        stats.errors,
        stats.peak_in_flight,
    );
    let s = stats.store;
    eprintln!(
        "store: hits={} misses={} coalesced={} loads={} evictions={} \
         resident={}B/{}B peak={}B hit_rate={:.3}",
        s.hits,
        s.misses,
        s.coalesced,
        s.loads,
        s.evictions,
        s.resident_bytes,
        service.store().budget_bytes(),
        s.peak_resident_bytes,
        s.hit_rate(),
    );
    if service.store().disk_tier().is_some() {
        eprintln!(
            "disk: hits={} misses={} invalidations={} writes={} bytes_written={} write_failures={}",
            s.disk_hits,
            s.disk_misses,
            s.disk_invalidations,
            s.disk_writes,
            s.disk_bytes_written,
            s.disk_write_failures,
        );
    }
}

/// Handles one input line; `None` means nothing to emit (blank line).
fn handle(service: &Service, line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            // Best-effort id recovery so the caller can correlate the error.
            let id = parse_json(line)
                .ok()
                .and_then(|v| v.get("id").and_then(Json::as_u64))
                .unwrap_or(0);
            return Some(proto::render_error(id, &e));
        }
    };
    Some(match request.op {
        RequestOp::Analyze { app } => match service.analyze_app(&app) {
            Ok(a) => proto::render_analysis(request.id, "analyze", &a),
            Err(e) => proto::render_error(request.id, &e.to_string()),
        },
        RequestOp::Query { app, classes } => match service.query_sinks(&app, &classes) {
            Ok(a) => proto::render_analysis(request.id, "query", &a),
            Err(e) => proto::render_error(request.id, &e.to_string()),
        },
        RequestOp::Batch { apps } => proto::render_batch(request.id, &service.analyze_batch(&apps)),
        RequestOp::Stats => proto::render_stats(request.id, &service.stats()),
    })
}

/// Reassembles worker output in input-sequence order: responses print
/// exactly as if the trace had been served sequentially.
struct OrderedEmitter {
    state: Mutex<(u64, BTreeMap<u64, Option<String>>)>,
}

impl OrderedEmitter {
    fn new() -> Self {
        OrderedEmitter {
            state: Mutex::new((0, BTreeMap::new())),
        }
    }

    fn emit(&self, seq: u64, line: Option<String>) {
        let mut state = self.state.lock().expect("emitter poisoned");
        let (next_seq, pending) = &mut *state;
        pending.insert(seq, line);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        while let Some(next) = pending.remove(next_seq) {
            *next_seq += 1;
            if let Some(line) = next {
                writeln!(out, "{line}").expect("stdout closed");
            }
        }
    }
}

fn serve(service: &Service, workers: usize) {
    let stdin = std::io::stdin();
    if workers <= 1 {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in stdin.lock().lines() {
            let line = line.expect("stdin read failed");
            if let Some(resp) = handle(service, &line) {
                writeln!(out, "{resp}").expect("stdout closed");
            }
        }
        return;
    }
    // `StdinLock` is not `Send`, so workers serialize reads on this seq
    // counter's mutex and call `Stdin::read_line` (which locks
    // internally) inside the critical section — sequence numbers are
    // assigned in exact input order.
    let read_seq: Mutex<u64> = Mutex::new(0);
    let emitter = OrderedEmitter::new();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let (seq, line) = {
                    let mut seq = read_seq.lock().expect("stdin reader poisoned");
                    let mut line = String::new();
                    let n = stdin.read_line(&mut line).expect("stdin read failed");
                    if n == 0 {
                        break;
                    }
                    let this = *seq;
                    *seq += 1;
                    (this, line)
                };
                emitter.emit(seq, handle(service, &line));
            });
        }
    });
}
