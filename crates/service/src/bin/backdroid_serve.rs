//! `backdroid-serve` — the resident analysis service as a CLI: JSONL on
//! stdin/stdout, optionally sharded over N single-service workers, and
//! optionally served over a length-framed socket transport.
//!
//! ```console
//! $ backdroid-serve --count 8 --code-permille 40 --emit-trace 60 --seed 7 > trace.jsonl
//! $ backdroid-serve --count 8 --code-permille 40 --budget-mb 64 --workers 4 < trace.jsonl
//! $ backdroid-serve --count 8 --code-permille 40 --shards 4 < trace.jsonl
//! $ backdroid-serve --count 8 --code-permille 40 --shards 4 --listen tcp:127.0.0.1:7411 --once &
//! $ backdroid-serve --connect tcp:127.0.0.1:7411 < trace.jsonl
//! ```
//!
//! Responses are emitted **in request order** whatever the worker or
//! shard count, and contain only deterministic fields, so the output
//! for one trace is byte-identical across worker counts, shard counts,
//! search backends, store budgets, and the stdin/socket transports —
//! `--direct` (a zero-budget store: every request cold-loads, nothing
//! stays resident) produces the golden direct-analysis run the CI
//! service-smoke and shard-smoke legs diff the others against. Service,
//! store, and pool statistics go to stderr at EOF.
//!
//! App updates are first-class ops: `put_version` publishes a seeded
//! mutated version (persisted as content-addressed per-class chunks
//! under the snapshot dir), and `analyze_delta` re-analyzes only what
//! the update could have changed — rendering the same bytes as a full
//! `analyze` of that version, which the CI delta-smoke leg replay-diffs.

use backdroid_appgen::benchset::BenchsetConfig;
use backdroid_appgen::workload::{self, WorkloadConfig};
use backdroid_core::BackendChoice;
use backdroid_service::proto::{self, parse_json, parse_request, workload_request_line, Json};
use backdroid_service::shard::execute_request;
use backdroid_service::transport::{write_frame, Endpoint, FrameReader, OrderedEmitter};
use backdroid_service::{Responder, Service, ServiceConfig, ShardPool, ShardPoolConfig};
use std::io::{BufRead, Read, Write};
use std::sync::{Arc, Mutex};

const USAGE: &str = "\
backdroid-serve — resident multi-app BackDroid analysis service (JSONL on stdin/stdout)

Benchset (the app universe; ids are decimal indices):
  --count N            apps in the backing benchset (default 24)
  --code-permille M    filler-code volume in thousandths (default 80)

Serving:
  --backend B          search backend: linear | indexed (default indexed)
  --budget-mb N        resident app-store byte budget (default 512; per shard when sharded)
  --direct             zero-budget store: every request cold-loads (golden mode)
  --workers N          request worker threads — per shard when sharded (default 1)
  --intra-threads N    intra-app sink-task scheduler width (default 1)
  --snapshot-dir DIR   persistent disk tier: cold loads restore from versioned,
                       checksummed snapshots in DIR; first parses write them.
                       Shared across shards, so restarted shards come back warm.
                       Responses are byte-identical with or without it.

Sharding & socket transport:
  --shards N           route requests by app-id hash over N shard services, each
                       with its own app store; admin ops kill_shard/restart_shard
                       take shards down and bring them back disk-warm
  --queue-depth N      bounded per-shard queue; submission blocks when full (default 64)
  --listen EP          serve the length-framed binary protocol on a socket
                       (EP = tcp:HOST:PORT or unix:PATH) instead of stdin
  --once               with --listen: serve exactly one connection, then exit
  --connect EP         client mode: frame stdin lines to a listening server and
                       print its responses — byte-identical to a local replay

Observability:
  --trace-out PATH     write the per-request span trace as JSONL to PATH at EOF.
                       Forces the pool path (a pool of one when unsharded), so
                       every topology traces through the same code
  --trace-norm         normalize the trace written by --trace-out: sorted by
                       (trace,span), timestamps zeroed, wall attrs dropped —
                       byte-identical across replays and shard counts
  --trace-capacity N   span-ring capacity for --trace-out (default 65536);
                       a wrapped ring is reported on stderr
  (the JSONL op {\"id\":N,\"op\":\"metrics\"} returns the full registry —
   counters, gauges, histograms with p50/p90/p99 — per shard and aggregated)

Incremental updates (JSONL ops over any transport):
  {\"id\":N,\"op\":\"put_version\",\"app\":A,\"seed\":S}
                       publish a seeded mutated version of app A; replies with
                       the new version number and the per-class chunk delta
  {\"id\":N,\"op\":\"analyze_delta\",\"app\":A}
                       re-analyze only what the last update could have changed,
                       reusing prior verdicts — byte-identical to a full
                       \"analyze\" of the same version (modulo the echoed op)

Trace generation (prints a workload instead of serving):
  --emit-trace R       emit R seeded requests over the benchset and exit
  --seed S             workload seed (default 7)
  --zipf-permille Z    popularity skew, thousandths of s (default 1100)
  --query-permille Q   share of sink-class queries (default 300)
  --batch-permille B   share of multi-app batches (default 100)
  --burst-permille U   share of analyzes opening a 2-5 repeat hot burst (default 0)
  --deadline-permille D share of requests carrying a deadline (default 0)
  --deadline-ms MS     the deadline attached to those requests (default 50)
";

/// The value following `--flag` (or embedded as `--flag=value`) in argv.
fn arg_value(flag: &str) -> Option<String> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
        if let Some(v) = a.strip_prefix(&format!("{flag}=")) {
            return Some(v.to_string());
        }
    }
    None
}

fn usage_error(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("error: {flag} {value:?} is invalid — expected {expected}");
    std::process::exit(2)
}

fn parsed_arg<T: std::str::FromStr>(flag: &str, expected: &str) -> Option<T> {
    arg_value(flag).map(|v| {
        v.parse::<T>()
            .unwrap_or_else(|_| usage_error(flag, &v, expected))
    })
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn endpoint_arg(flag: &str) -> Option<Endpoint> {
    arg_value(flag).map(|v| {
        Endpoint::parse(&v).unwrap_or_else(|e| usage_error(flag, &v, &format!("an endpoint: {e}")))
    })
}

fn benchset_from_args() -> BenchsetConfig {
    let count = parsed_arg::<usize>("--count", "a positive integer").unwrap_or(24);
    let permille =
        parsed_arg::<u32>("--code-permille", "an integer (1000 ≙ paper scale)").unwrap_or(80);
    BenchsetConfig::try_sized(count, permille as f64 / 1000.0).unwrap_or_else(|e| {
        eprintln!("error: invalid benchset size: {e}");
        std::process::exit(2)
    })
}

fn main() {
    if has_flag("--help") || has_flag("-h") {
        print!("{USAGE}");
        return;
    }

    // Client mode needs no benchset: it only pumps frames.
    if let Some(endpoint) = endpoint_arg("--connect") {
        run_client(&endpoint);
        return;
    }

    let bench = benchset_from_args();

    if let Some(requests) = parsed_arg::<usize>("--emit-trace", "a positive integer") {
        let cfg = WorkloadConfig {
            apps: bench.count,
            requests,
            seed: parsed_arg("--seed", "an integer").unwrap_or(7),
            zipf_permille: parsed_arg("--zipf-permille", "an integer").unwrap_or(1100),
            query_permille: parsed_arg("--query-permille", "an integer").unwrap_or(300),
            batch_permille: parsed_arg("--batch-permille", "an integer").unwrap_or(100),
            burst_permille: parsed_arg("--burst-permille", "an integer").unwrap_or(0),
            deadline_permille: parsed_arg("--deadline-permille", "an integer").unwrap_or(0),
            deadline_ms: parsed_arg("--deadline-ms", "milliseconds").unwrap_or(50),
        };
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for (i, req) in workload::generate(cfg).iter().enumerate() {
            writeln!(out, "{}", workload_request_line(i as u64, req)).expect("stdout closed");
        }
        return;
    }

    let backend = match arg_value("--backend") {
        Some(v) => BackendChoice::parse(&v)
            .unwrap_or_else(|| usage_error("--backend", &v, "\"linear\" or \"indexed\"")),
        None => BackendChoice::default(),
    };
    let budget_bytes = if has_flag("--direct") {
        0
    } else {
        parsed_arg::<u64>("--budget-mb", "a byte budget in MiB").unwrap_or(512) * 1024 * 1024
    };
    let workers = parsed_arg::<usize>("--workers", "a positive integer")
        .unwrap_or(1)
        .max(1);
    let service_cfg = ServiceConfig {
        budget_bytes,
        backend,
        intra_threads: parsed_arg::<usize>("--intra-threads", "a positive integer")
            .unwrap_or(1)
            .max(1),
        snapshot_dir: arg_value("--snapshot-dir").map(std::path::PathBuf::from),
        ..ServiceConfig::default()
    };

    let shards = parsed_arg::<usize>("--shards", "a positive integer");
    let listen = endpoint_arg("--listen");
    let trace_out = arg_value("--trace-out").map(std::path::PathBuf::from);

    // The socket transport and the span tracer always serve through a
    // pool (of one shard if --shards was not given), so every topology
    // shares one path.
    if shards.is_some() || listen.is_some() || trace_out.is_some() {
        let pool = ShardPool::new(
            ShardPoolConfig {
                shards: shards.unwrap_or(1),
                workers_per_shard: workers,
                queue_capacity: parsed_arg::<usize>("--queue-depth", "a positive integer")
                    .unwrap_or(64)
                    .max(1),
                trace_capacity: if trace_out.is_some() {
                    parsed_arg::<usize>("--trace-capacity", "a positive integer")
                        .unwrap_or(65_536)
                        .max(1)
                } else {
                    0
                },
            },
            move |_| Service::over_benchset(bench, service_cfg.clone()),
        );
        match &listen {
            Some(endpoint) => serve_socket(&pool, endpoint, has_flag("--once")),
            None => serve_stdin_sharded(&pool),
        }
        if let Some(path) = &trace_out {
            write_trace(&pool, path, has_flag("--trace-norm"));
        }
        print_pool_stats(&pool);
        pool.shutdown();
        return;
    }

    let service = Service::over_benchset(bench, service_cfg);
    serve(&service, workers);
    print_service_stats(&service);
}

/// Writes the pool's span ring to `path` at EOF — raw JSONL, or the
/// normalized form (`(trace,span)`-sorted, zeroed timestamps, wall
/// attrs dropped) that replays diff byte-for-byte.
fn write_trace(pool: &ShardPool, path: &std::path::Path, normalized: bool) {
    let tracer = pool.tracer().expect("--trace-out enables the tracer");
    if tracer.dropped() > 0 {
        eprintln!(
            "warning: span ring wrapped, {} spans lost — raise --trace-capacity",
            tracer.dropped()
        );
    }
    let jsonl = if normalized {
        tracer.export_normalized_jsonl()
    } else {
        tracer.export_jsonl()
    };
    if let Err(e) = std::fs::write(path, jsonl) {
        eprintln!("error: cannot write trace to {}: {e}", path.display());
        std::process::exit(1);
    }
}

fn print_service_stats(service: &Service) {
    let stats = service.stats();
    eprintln!(
        "requests={} (analyze={} query={} batch={}) errors={} peak_in_flight={}",
        stats.requests,
        stats.analyze_requests,
        stats.query_requests,
        stats.batch_requests,
        stats.errors,
        stats.peak_in_flight,
    );
    let s = stats.store;
    eprintln!(
        "store: hits={} misses={} coalesced={} loads={} evictions={} \
         resident={}B/{}B peak={}B hit_rate={:.3}",
        s.hits,
        s.misses,
        s.coalesced,
        s.loads,
        s.evictions,
        s.resident_bytes,
        service.store().budget_bytes(),
        s.peak_resident_bytes,
        s.hit_rate(),
    );
    if service.store().disk_tier().is_some() {
        eprintln!(
            "disk: hits={} misses={} invalidations={} writes={} bytes_written={} write_failures={}",
            s.disk_hits,
            s.disk_misses,
            s.disk_invalidations,
            s.disk_writes,
            s.disk_bytes_written,
            s.disk_write_failures,
        );
    }
}

fn print_pool_stats(pool: &ShardPool) {
    let p = pool.pool_stats();
    eprintln!(
        "pool: shards={} alive={} rerouted={} deadline_expired={} no_shard_errors={} \
         kills={} restarts={}",
        p.shards, p.alive, p.rerouted, p.deadline_expired, p.no_shard_errors, p.kills, p.restarts,
    );
    let agg = pool.stats();
    let s = agg.store;
    eprintln!(
        "aggregate: requests={} (analyze={} query={} batch={}) errors={} hits={} misses={} \
         coalesced={} loads={} evictions={} disk_hits={} disk_writes={} hit_rate={:.3}",
        agg.requests,
        agg.analyze_requests,
        agg.query_requests,
        agg.batch_requests,
        agg.errors,
        s.hits,
        s.misses,
        s.coalesced,
        s.loads,
        s.evictions,
        s.disk_hits,
        s.disk_writes,
        s.hit_rate(),
    );
    for i in 0..pool.shard_count() {
        match pool.shard_stats(i) {
            Some(s) => eprintln!(
                "shard {i}: requests={} errors={} hits={} misses={} loads={} disk_hits={} \
                 resident_apps={}",
                s.requests,
                s.errors,
                s.store.hits,
                s.store.misses,
                s.store.loads,
                s.store.disk_hits,
                s.store.resident_apps,
            ),
            None => eprintln!("shard {i}: down"),
        }
    }
}

/// Handles one input line against a single (unsharded) service; `None`
/// means nothing to emit (blank line, admin no-ops).
fn handle(service: &Service, line: &str) -> Option<String> {
    let line = line.trim();
    if line.is_empty() {
        return None;
    }
    match parse_request(line) {
        Ok(request) => execute_request(service, &request),
        Err(e) => {
            // Best-effort id recovery so the caller can correlate the error.
            let id = parse_json(line)
                .ok()
                .and_then(|v| v.get("id").and_then(Json::as_u64))
                .unwrap_or(0);
            Some(proto::render_error(id, &e))
        }
    }
}

fn serve(service: &Service, workers: usize) {
    let stdin = std::io::stdin();
    if workers <= 1 {
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in stdin.lock().lines() {
            let line = line.expect("stdin read failed");
            if let Some(resp) = handle(service, &line) {
                writeln!(out, "{resp}").expect("stdout closed");
            }
        }
        return;
    }
    // `StdinLock` is not `Send`, so workers serialize reads on this seq
    // counter's mutex and call `Stdin::read_line` (which locks
    // internally) inside the critical section — sequence numbers are
    // assigned in exact input order.
    let read_seq: Mutex<u64> = Mutex::new(0);
    let emitter = OrderedEmitter::new(|line: Option<String>| {
        if let Some(line) = line {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            writeln!(out, "{line}").expect("stdout closed");
        }
    });
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let (seq, line) = {
                    let mut seq = read_seq.lock().expect("stdin reader poisoned");
                    let mut line = String::new();
                    let n = stdin.read_line(&mut line).expect("stdin read failed");
                    if n == 0 {
                        break;
                    }
                    let this = *seq;
                    *seq += 1;
                    (this, line)
                };
                emitter.emit(seq, handle(service, &line));
            });
        }
    });
}

/// Stdout responder over an ordered emitter: `None` completions are
/// swallowed, so sharded stdin output matches the sequential server's.
fn stdout_responder() -> (Responder, Arc<OrderedEmitter>) {
    let emitter = Arc::new(OrderedEmitter::new(|line: Option<String>| {
        if let Some(line) = line {
            let stdout = std::io::stdout();
            let mut out = stdout.lock();
            writeln!(out, "{line}").expect("stdout closed");
        }
    }));
    let sink = Arc::clone(&emitter);
    let responder: Responder = Arc::new(move |seq, line| sink.emit(seq, line));
    (responder, emitter)
}

fn serve_stdin_sharded(pool: &ShardPool) {
    let (responder, emitter) = stdout_responder();
    let stdin = std::io::stdin();
    let mut seq = 0u64;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin read failed");
        pool.submit_line(seq, &line, &responder);
        seq += 1;
    }
    pool.drain();
    emitter.wait_for(seq);
}

/// Serves one accepted connection: each request frame is one protocol
/// line; each gets exactly one response frame back, in request order
/// (an empty frame for "no output"), so the client stays in lockstep.
fn serve_connection(pool: &ShardPool, reader: impl Read, writer: impl Write + Send + 'static) {
    let writer = Mutex::new(writer);
    let emitter = Arc::new(OrderedEmitter::new(move |line: Option<String>| {
        let mut w = writer.lock().expect("connection writer poisoned");
        let payload = line.as_deref().unwrap_or("");
        if write_frame(&mut *w, payload.as_bytes())
            .and_then(|()| w.flush())
            .is_err()
        {
            // The client went away; keep draining silently.
        }
    }));
    let sink = Arc::clone(&emitter);
    let responder: Responder = Arc::new(move |seq, line| sink.emit(seq, line));
    let mut frames = FrameReader::new(reader);
    let mut seq = 0u64;
    loop {
        match frames.read_frame() {
            Ok(Some(payload)) => {
                let line = String::from_utf8_lossy(&payload).into_owned();
                pool.submit_line(seq, &line, &responder);
                seq += 1;
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("connection dropped: {e}");
                break;
            }
        }
    }
    pool.drain();
    emitter.wait_for(seq);
}

fn serve_socket(pool: &ShardPool, endpoint: &Endpoint, once: bool) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|e| {
                usage_error("--listen", addr, &format!("a bindable address ({e})"))
            });
            eprintln!("listening on {endpoint}");
            loop {
                let (stream, _) = listener.accept().expect("accept failed");
                let reader = stream.try_clone().expect("stream clone failed");
                serve_connection(pool, reader, stream);
                if once {
                    break;
                }
            }
        }
        Endpoint::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path).unwrap_or_else(|e| {
                usage_error(
                    "--listen",
                    &path.display().to_string(),
                    &format!("a bindable path ({e})"),
                )
            });
            eprintln!("listening on {endpoint}");
            loop {
                let (stream, _) = listener.accept().expect("accept failed");
                let reader = stream.try_clone().expect("stream clone failed");
                serve_connection(pool, reader, stream);
                if once {
                    break;
                }
            }
        }
    }
}

/// Client mode: frame stdin lines to the server, print every non-empty
/// response payload to stdout. Output is byte-identical to a local
/// stdin replay of the same trace.
fn run_client(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let stream = std::net::TcpStream::connect(addr).unwrap_or_else(|e| {
                usage_error("--connect", addr, &format!("a reachable server ({e})"))
            });
            let reader = stream.try_clone().expect("stream clone failed");
            let writer = stream.try_clone().expect("stream clone failed");
            pump_client(reader, writer, move || {
                let _ = stream.shutdown(std::net::Shutdown::Write);
            });
        }
        Endpoint::Unix(path) => {
            let stream = std::os::unix::net::UnixStream::connect(path).unwrap_or_else(|e| {
                usage_error(
                    "--connect",
                    &path.display().to_string(),
                    &format!("a reachable server ({e})"),
                )
            });
            let reader = stream.try_clone().expect("stream clone failed");
            let writer = stream.try_clone().expect("stream clone failed");
            pump_client(reader, writer, move || {
                let _ = stream.shutdown(std::net::Shutdown::Write);
            });
        }
    }
}

fn pump_client(
    reader: impl Read + Send + 'static,
    mut writer: impl Write,
    half_close: impl FnOnce(),
) {
    let printer = std::thread::spawn(move || {
        let mut frames = FrameReader::new(reader);
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        loop {
            match frames.read_frame() {
                Ok(Some(payload)) => {
                    if !payload.is_empty() {
                        out.write_all(&payload).expect("stdout closed");
                        out.write_all(b"\n").expect("stdout closed");
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    eprintln!("error: server connection lost: {e}");
                    std::process::exit(1);
                }
            }
        }
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.expect("stdin read failed");
        write_frame(&mut writer, line.as_bytes()).expect("server closed the connection");
    }
    writer.flush().expect("server closed the connection");
    half_close();
    printer.join().expect("response printer panicked");
}
