//! The length-framed binary socket transport `backdroid-serve` speaks
//! with `--listen` / `--connect`: a hand-rolled frame codec over the
//! same varint vocabulary as the snapshot wire format
//! ([`backdroid_ir::wire`]), carried over TCP or Unix-domain sockets —
//! no new dependencies, the same ethos as the JSONL parser.
//!
//! ## Frame format
//!
//! ```text
//! frame = magic u8 (0xBD) · payload length (LEB128 uvarint) · payload
//! ```
//!
//! The payload is one protocol line (see [`crate::proto`]) — requests in
//! one direction, responses in the other. An **empty payload** is the
//! explicit "no output" response (blank input lines, admin ops), which
//! keeps requests and responses 1:1 per connection so a client never has
//! to guess how many frames are coming.
//!
//! Two properties mirror the snapshot layer's, and are enforced by
//! `tests/transport_proto.rs`:
//!
//! * **Determinism** — encoding is a pure function of the payload, so
//!   replies relayed over the socket diff byte-for-byte against a
//!   stdin/stdout run of the same trace.
//! * **Total decoding** — [`decode_frame`] never panics and never
//!   allocates ahead of its input: a bad magic byte, an overlong length
//!   varint, or a length above the cap is a typed [`FrameError`]; a
//!   frame that is merely incomplete is [`FrameDecode::NeedMore`], never
//!   an error, so a streaming reader can wait for the rest.

use backdroid_ir::wire::WireWriter;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::sync::{Condvar, Mutex};

/// First byte of every frame — rejects line-oriented traffic (and
/// random garbage) before a length is ever trusted.
pub const FRAME_MAGIC: u8 = 0xBD;

/// Default cap on one frame's payload. Responses carry rendered sink
/// reports for one app and stay far below this; anything larger is a
/// corrupt or hostile length and must not trigger an allocation.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;

/// Why a frame failed to decode. Incomplete input is *not* an error —
/// see [`FrameDecode::NeedMore`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameError {
    /// The first byte was not [`FRAME_MAGIC`]: the peer is not speaking
    /// this protocol (or the stream lost sync). Unrecoverable for the
    /// connection.
    BadMagic(u8),
    /// The length varint was malformed (longer than 10 bytes or
    /// overflowing 64 bits).
    BadLength,
    /// The declared payload length exceeds the cap — decoding stops
    /// before allocating.
    TooLarge {
        /// The length the frame claimed.
        len: u64,
        /// The cap it exceeded.
        max: u64,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            FrameError::BadLength => write!(f, "malformed frame length varint"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds the {max}-byte cap")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// The outcome of [`decode_frame`] on a buffer that held no error.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameDecode {
    /// A complete frame: its payload and the total bytes it consumed
    /// from the front of the buffer.
    Frame {
        /// The frame's payload bytes.
        payload: Vec<u8>,
        /// Bytes consumed from the buffer (header + payload).
        consumed: usize,
    },
    /// The buffer holds a valid frame prefix but not the whole frame
    /// yet — read more bytes and retry.
    NeedMore,
}

/// Encodes one frame: magic, uvarint payload length, payload bytes.
/// The header is written with the snapshot format's [`WireWriter`], so
/// both on-disk and on-wire layers share one varint definition.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.put_u8(FRAME_MAGIC);
    w.put_uvarint(payload.len() as u64);
    let mut out = w.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Decodes one frame from the front of `buf`, with payloads capped at
/// `max_payload` bytes. Total: every input is either a frame, a typed
/// error, or an honest request for more bytes — never a panic, and
/// never an allocation sized by unvalidated input.
pub fn decode_frame(buf: &[u8], max_payload: u64) -> Result<FrameDecode, FrameError> {
    let Some(&first) = buf.first() else {
        return Ok(FrameDecode::NeedMore);
    };
    if first != FRAME_MAGIC {
        return Err(FrameError::BadMagic(first));
    }
    // Inline LEB128 decode so an incomplete varint is NeedMore, not an
    // error (WireReader's Truncated conflates the two).
    let mut len: u64 = 0;
    let mut at = 1usize;
    loop {
        let Some(&byte) = buf.get(at) else {
            return Ok(FrameDecode::NeedMore);
        };
        let shift = (at - 1) * 7;
        if at > 10 || (shift == 63 && (byte & 0x7f) > 1) {
            return Err(FrameError::BadLength);
        }
        len |= ((byte & 0x7f) as u64) << shift;
        at += 1;
        if byte & 0x80 == 0 {
            break;
        }
    }
    if len > max_payload {
        return Err(FrameError::TooLarge {
            len,
            max: max_payload,
        });
    }
    let len = len as usize;
    let Some(payload) = buf.get(at..at + len) else {
        return Ok(FrameDecode::NeedMore);
    };
    Ok(FrameDecode::Frame {
        payload: payload.to_vec(),
        consumed: at + len,
    })
}

/// Writes one frame to a stream.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(payload))
}

/// A buffering frame reader over any byte stream.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
    max_payload: u64,
}

impl<R: Read> FrameReader<R> {
    /// A reader with the default [`MAX_FRAME_BYTES`] payload cap.
    pub fn new(inner: R) -> Self {
        Self::with_max_payload(inner, MAX_FRAME_BYTES)
    }

    /// A reader with an explicit payload cap.
    pub fn with_max_payload(inner: R, max_payload: u64) -> Self {
        FrameReader {
            inner,
            buf: Vec::new(),
            consumed: 0,
            max_payload,
        }
    }

    /// Reads the next frame's payload. `Ok(None)` means the stream
    /// ended cleanly on a frame boundary; EOF mid-frame, bad magic, and
    /// oversized lengths become `io::Error`s (the connection is
    /// unrecoverable once framing is lost).
    pub fn read_frame(&mut self) -> io::Result<Option<Vec<u8>>> {
        loop {
            match decode_frame(&self.buf[self.consumed..], self.max_payload) {
                Ok(FrameDecode::Frame { payload, consumed }) => {
                    self.consumed += consumed;
                    // Reclaim the buffer once everything buffered was used.
                    if self.consumed == self.buf.len() {
                        self.buf.clear();
                        self.consumed = 0;
                    }
                    return Ok(Some(payload));
                }
                Ok(FrameDecode::NeedMore) => {
                    let mut chunk = [0u8; 8192];
                    let n = self.inner.read(&mut chunk)?;
                    if n == 0 {
                        return if self.consumed == self.buf.len() {
                            Ok(None)
                        } else {
                            Err(io::Error::new(
                                io::ErrorKind::UnexpectedEof,
                                "stream ended mid-frame",
                            ))
                        };
                    }
                    if self.consumed > 0 {
                        self.buf.drain(..self.consumed);
                        self.consumed = 0;
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
        }
    }
}

/// A serve/connect address: `tcp:HOST:PORT` or `unix:PATH`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Endpoint {
    /// A TCP socket address (`tcp:127.0.0.1:7411`).
    Tcp(String),
    /// A Unix-domain socket path (`unix:/tmp/backdroid.sock`).
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` / `unix:PATH`.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr
                .rsplit_once(':')
                .is_none_or(|(h, p)| h.is_empty() || p.parse::<u16>().is_err())
            {
                return Err(format!("{addr:?} is not HOST:PORT"));
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix: endpoint needs a path".into());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else {
            Err(format!(
                "{s:?} is not an endpoint — expected tcp:HOST:PORT or unix:PATH"
            ))
        }
    }
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// Reassembles out-of-order completions into input-sequence order:
/// response `seq` reaches the sink exactly once, in ascending `seq`
/// order, whatever order workers finish in. `None` completions are
/// delivered to the sink too (it decides whether "no output" is
/// skipped, as stdout mode does, or an empty frame, as the socket
/// transport does).
pub struct OrderedEmitter {
    #[allow(clippy::type_complexity)]
    state: Mutex<(u64, BTreeMap<u64, Option<String>>)>,
    advanced: Condvar,
    #[allow(clippy::type_complexity)]
    sink: Box<dyn Fn(Option<String>) + Send + Sync>,
}

impl std::fmt::Debug for OrderedEmitter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().expect("emitter poisoned");
        f.debug_struct("OrderedEmitter")
            .field("next_seq", &state.0)
            .field("pending", &state.1.len())
            .finish()
    }
}

impl OrderedEmitter {
    /// An emitter delivering ordered completions to `sink`.
    pub fn new(sink: impl Fn(Option<String>) + Send + Sync + 'static) -> Self {
        OrderedEmitter {
            state: Mutex::new((0, BTreeMap::new())),
            advanced: Condvar::new(),
            sink: Box::new(sink),
        }
    }

    /// Records completion `seq` and flushes every now-contiguous
    /// completion to the sink, in order.
    pub fn emit(&self, seq: u64, line: Option<String>) {
        let mut state = self.state.lock().expect("emitter poisoned");
        state.1.insert(seq, line);
        loop {
            let next_seq = state.0;
            let Some(next) = state.1.remove(&next_seq) else {
                break;
            };
            state.0 += 1;
            // The sink runs under the lock, which serializes output and
            // keeps `wait_for` exact; sinks are plain writes.
            (self.sink)(next);
        }
        self.advanced.notify_all();
    }

    /// Blocks until every completion below `n` has been flushed.
    pub fn wait_for(&self, n: u64) {
        let mut state = self.state.lock().expect("emitter poisoned");
        while state.0 < n {
            state = self.advanced.wait(state).expect("emitter poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_concatenate() {
        for payload in [&b""[..], b"x", b"{\"id\":0}", &[0u8; 300]] {
            let enc = encode_frame(payload);
            match decode_frame(&enc, MAX_FRAME_BYTES).unwrap() {
                FrameDecode::Frame {
                    payload: got,
                    consumed,
                } => {
                    assert_eq!(got, payload);
                    assert_eq!(consumed, enc.len());
                }
                other => panic!("expected a frame, got {other:?}"),
            }
        }
        // Two concatenated frames decode in sequence.
        let mut stream = encode_frame(b"first");
        stream.extend_from_slice(&encode_frame(b"second"));
        let FrameDecode::Frame { payload, consumed } =
            decode_frame(&stream, MAX_FRAME_BYTES).unwrap()
        else {
            panic!("first frame");
        };
        assert_eq!(payload, b"first");
        let FrameDecode::Frame { payload, .. } =
            decode_frame(&stream[consumed..], MAX_FRAME_BYTES).unwrap()
        else {
            panic!("second frame");
        };
        assert_eq!(payload, b"second");
    }

    #[test]
    fn truncation_is_need_more_and_garbage_is_typed() {
        let enc = encode_frame(b"hello frame");
        for cut in 0..enc.len() {
            assert_eq!(
                decode_frame(&enc[..cut], MAX_FRAME_BYTES).unwrap(),
                FrameDecode::NeedMore,
                "prefix of {cut} bytes"
            );
        }
        assert_eq!(
            decode_frame(b"{\"id\":0}", MAX_FRAME_BYTES),
            Err(FrameError::BadMagic(b'{'))
        );
        // A length over the cap is rejected before any allocation.
        let mut huge = vec![FRAME_MAGIC];
        huge.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x7f]); // ~34 GiB
        assert!(matches!(
            decode_frame(&huge, MAX_FRAME_BYTES),
            Err(FrameError::TooLarge { .. })
        ));
        // An overlong varint is malformed, not a hang.
        let mut overlong = vec![FRAME_MAGIC];
        overlong.extend_from_slice(&[0x80; 11]);
        assert_eq!(
            decode_frame(&overlong, MAX_FRAME_BYTES),
            Err(FrameError::BadLength)
        );
    }

    #[test]
    fn frame_reader_streams_and_reports_mid_frame_eof() {
        let mut stream = Vec::new();
        for p in ["a", "", "long line payload"] {
            stream.extend_from_slice(&encode_frame(p.as_bytes()));
        }
        let mut r = FrameReader::new(&stream[..]);
        assert_eq!(r.read_frame().unwrap().as_deref(), Some(&b"a"[..]));
        assert_eq!(r.read_frame().unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(
            r.read_frame().unwrap().as_deref(),
            Some(&b"long line payload"[..])
        );
        assert_eq!(r.read_frame().unwrap(), None, "clean EOF on the boundary");

        let cut = &stream[..stream.len() - 3];
        let mut r = FrameReader::new(cut);
        r.read_frame().unwrap();
        r.read_frame().unwrap();
        assert!(r.read_frame().is_err(), "EOF mid-frame is an error");
    }

    #[test]
    fn endpoints_parse_and_render() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7411").unwrap(),
            Endpoint::Tcp("127.0.0.1:7411".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/bd.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/bd.sock"))
        );
        for bad in [
            "127.0.0.1:7411",
            "tcp:nohost",
            "tcp::77",
            "unix:",
            "tcp:h:x",
        ] {
            assert!(Endpoint::parse(bad).is_err(), "{bad:?} must not parse");
        }
        assert_eq!(
            Endpoint::parse("tcp:[::1]:7411").unwrap().to_string(),
            "tcp:[::1]:7411"
        );
    }

    #[test]
    fn ordered_emitter_reorders_and_waits() {
        let out = std::sync::Arc::new(Mutex::new(Vec::new()));
        let sink_out = std::sync::Arc::clone(&out);
        let em = OrderedEmitter::new(move |line| {
            sink_out.lock().unwrap().push(line);
        });
        em.emit(2, Some("two".into()));
        em.emit(0, Some("zero".into()));
        assert_eq!(out.lock().unwrap().len(), 1, "seq 1 still pending");
        em.emit(1, None);
        em.wait_for(3);
        assert_eq!(
            *out.lock().unwrap(),
            vec![Some("zero".to_string()), None, Some("two".to_string())]
        );
    }
}
