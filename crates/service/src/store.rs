//! The resident app store: `Arc<AppArtifacts>` keyed by app id, bounded
//! by a **byte budget** with LRU eviction, and loaded **single-flight**
//! — when N requests race for a cold app, exactly one builds its image
//! (encode → disassemble → index) while the rest wait on the in-flight
//! slot and share the result. This mirrors, one layer up, the sharded
//! single-flight command cache already proven inside
//! [`SearchEngine`](backdroid_search::SearchEngine): there the unit of
//! work is one search command, here it is one whole app image.
//!
//! ## Invariants
//!
//! * **Budget**: after every insertion settles, the resident total is
//!   `<= budget_bytes` — least-recently-used images are evicted first
//!   (an image larger than the whole budget is served to its requester
//!   and immediately dropped from the store, so the invariant holds even
//!   then). [`AppStore::resident_bytes`] can therefore never observe an
//!   over-budget store.
//! * **Single-flight**: for any interleaving of concurrent `get`s, the
//!   loader runs exactly once per cold app; `StoreStats::loads` counts
//!   loader executions and `coalesced` the requests that waited on one.
//! * **Determinism**: sizes come from
//!   [`AppArtifacts::estimated_bytes`], a pure function of the app, so
//!   a given request order always produces the same eviction sequence —
//!   and a snapshot-restored image has the same estimate as a freshly
//!   parsed one, so the disk tier never changes eviction decisions.
//!
//! ## The disk tier
//!
//! With [`AppStore::with_disk_tier`] the store becomes two-tier: cold
//! requests first try to deserialize a versioned, checksummed
//! [`AppArtifacts`] snapshot from disk ([`Fetch::Disk`]); only absent or
//! invalid snapshots fall through to the loader, whose result is
//! published to the memory tier and then written back. Every write goes
//! through a writer-unique temp file and an atomic rename, so a crashed
//! writer can never leave a half-snapshot — but atomicity alone stopped
//! being enough once [`AppStore::put`] made snapshot *content* version-
//! dependent: an eviction spill of version *n* racing a `put` of version
//! *n+1* could re-write the stale image after the put invalidated it.
//! Snapshot writes therefore go through a **per-app write guard** plus a
//! per-app **epoch**: `put` bumps the epoch before touching disk, and
//! every spill re-checks, under the guard, that the epoch it captured
//! when it obtained the image is still current — a stale spill skips
//! (counted by `store_disk_stale_spills_total`). Responses are identical
//! across all three tiers — the snapshot format round-trips
//! byte-identically — so replays can be diffed across cold-parse,
//! disk-warm, and memory-warm runs.

use backdroid_core::{AppArtifacts, BackendChoice, SnapshotError};
use backdroid_obs::{Counter, Gauge, MetricsRegistry, RegistrySnapshot};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How one [`AppStore::get`] was served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fetch {
    /// The app image was resident — a warm hit.
    Hit,
    /// The image was cold; this request ran the loader (full parse).
    Miss,
    /// The image was cold in memory but restored from an on-disk
    /// snapshot — no parse, just a deserialize.
    Disk,
    /// The image was cold but another request was already loading it;
    /// this request waited and shares that load's result.
    Coalesced,
}

/// The optional disk tier of the store: a directory of versioned,
/// checksummed [`AppArtifacts`] snapshots (see `backdroid_core::snapshot`
/// for the format), plus the backend restored images run their searches
/// on (runtime configuration, deliberately not part of the format).
#[derive(Clone, Debug)]
pub struct DiskTier {
    dir: PathBuf,
    backend: BackendChoice,
}

impl DiskTier {
    /// A disk tier rooted at `dir` (created on first write if missing).
    pub fn new(dir: impl Into<PathBuf>, backend: BackendChoice) -> Self {
        DiskTier {
            dir: dir.into(),
            backend,
        }
    }

    /// The snapshot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The snapshot file backing `app_id`. Ids are escaped into a safe
    /// filename alphabet (`[A-Za-z0-9_-]`, everything else `%XX`), so
    /// arbitrary loader ids can never traverse out of the directory.
    pub fn path_for(&self, app_id: &str) -> PathBuf {
        let mut name = String::with_capacity(app_id.len() + 5);
        for b in app_id.bytes() {
            match b {
                b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_' | b'-' => name.push(b as char),
                _ => {
                    name.push('%');
                    name.push_str(&format!("{b:02X}"));
                }
            }
        }
        name.push_str(".snap");
        self.dir.join(name)
    }

    /// Attempts to restore `app_id` from disk. `Ok(None)` means no
    /// snapshot exists (a disk miss); `Err` means a snapshot exists but
    /// is unusable — truncated, corrupt, or a different format version —
    /// and the caller should invalidate it and re-parse.
    fn load(&self, app_id: &str) -> Result<Option<AppArtifacts>, SnapshotError> {
        let bytes = match std::fs::read(self.path_for(app_id)) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            // Unreadable (permissions, transient I/O): treat as absent
            // rather than repeatedly invalidating a file we cannot see.
            Err(_) => return Ok(None),
        };
        AppArtifacts::from_snapshot(&bytes, self.backend).map(Some)
    }

    /// Writes `artifacts` as the snapshot for `app_id`, atomically
    /// (writer-unique temp file + rename) so a crashed writer can never
    /// leave a half-snapshot that later loads as truncated-but-present,
    /// and concurrent writers (an eviction spill racing a first load in
    /// this or another process) cannot clobber each other's temp bytes —
    /// both write the same content, and the last rename wins whole.
    /// Returns the snapshot size on success; failures are reported,
    /// counted by the store, and otherwise non-fatal — the disk tier is
    /// a cache.
    fn store(&self, app_id: &str, artifacts: &AppArtifacts) -> std::io::Result<u64> {
        static TMP_SEQ: AtomicU64 = AtomicU64::new(0);
        std::fs::create_dir_all(&self.dir)?;
        let bytes = artifacts.to_snapshot();
        let path = self.path_for(app_id);
        let tmp = path.with_extension(format!(
            "snap.tmp-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &bytes)?;
        if let Err(e) = std::fs::rename(&tmp, &path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        Ok(bytes.len() as u64)
    }

    /// Best-effort removal of an invalid snapshot.
    fn invalidate(&self, app_id: &str) {
        let _ = std::fs::remove_file(self.path_for(app_id));
    }
}

/// Snapshot of the store's monotonic counters plus its current residency.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StoreStats {
    /// Requests served from a resident image.
    pub hits: u64,
    /// Requests that found the image cold and ran the loader.
    pub misses: u64,
    /// Requests that piggybacked on another request's in-flight load.
    pub coalesced: u64,
    /// Images produced and inserted: loader executions plus snapshot
    /// restores ([`StoreStats::disk_hits`] counts the restores alone).
    pub loads: u64,
    /// Loader executions that failed.
    pub load_failures: u64,
    /// Images evicted to stay under the byte budget.
    pub evictions: u64,
    /// Total estimated bytes of evicted images.
    pub bytes_evicted: u64,
    /// Cold requests served by deserializing an on-disk snapshot
    /// instead of re-parsing (zero when no disk tier is configured).
    pub disk_hits: u64,
    /// Cold requests that found no snapshot on disk and ran the loader.
    pub disk_misses: u64,
    /// Snapshots found unusable — truncated, checksum mismatch, or a
    /// different format version — deleted, and re-parsed from source.
    pub disk_invalidations: u64,
    /// Snapshots written (on first load, and by eviction spilling when
    /// a victim's snapshot went missing).
    pub disk_writes: u64,
    /// Total snapshot bytes written to the disk tier.
    pub disk_bytes_written: u64,
    /// Snapshot writes that failed (full disk, permissions). Non-fatal:
    /// the image is still served from memory.
    pub disk_write_failures: u64,
    /// Largest resident total ever observed after an insertion settled
    /// (never exceeds the budget — the store evicts before it reports).
    pub peak_resident_bytes: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: u64,
    /// Images currently resident.
    pub resident_apps: u64,
}

impl StoreStats {
    /// Folds another store's counters into this one — how a sharded
    /// server aggregates its per-shard stores into the fleet view the
    /// JSONL `stats` op reports. Monotonic counters and residency sum
    /// exactly; `peak_resident_bytes` sums too, making the aggregate an
    /// **upper bound** on true simultaneous fleet residency (per-shard
    /// peaks need not coincide).
    pub fn absorb(&mut self, other: &StoreStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.coalesced += other.coalesced;
        self.loads += other.loads;
        self.load_failures += other.load_failures;
        self.evictions += other.evictions;
        self.bytes_evicted += other.bytes_evicted;
        self.disk_hits += other.disk_hits;
        self.disk_misses += other.disk_misses;
        self.disk_invalidations += other.disk_invalidations;
        self.disk_writes += other.disk_writes;
        self.disk_bytes_written += other.disk_bytes_written;
        self.disk_write_failures += other.disk_write_failures;
        self.peak_resident_bytes += other.peak_resident_bytes;
        self.resident_bytes += other.resident_bytes;
        self.resident_apps += other.resident_apps;
    }

    /// Reads the `store_*` metrics out of a registry snapshot — the one
    /// render path every stats view (the wire `stats` op, the stderr
    /// dumps, shard aggregation) goes through, so they can never drift.
    pub fn from_metrics(snap: &RegistrySnapshot) -> StoreStats {
        StoreStats {
            hits: snap.value("store_hits_total"),
            misses: snap.value("store_misses_total"),
            coalesced: snap.value("store_coalesced_total"),
            loads: snap.value("store_loads_total"),
            load_failures: snap.value("store_load_failures_total"),
            evictions: snap.value("store_evictions_total"),
            bytes_evicted: snap.value("store_bytes_evicted_total"),
            disk_hits: snap.value("store_disk_hits_total"),
            disk_misses: snap.value("store_disk_misses_total"),
            disk_invalidations: snap.value("store_disk_invalidations_total"),
            disk_writes: snap.value("store_disk_writes_total"),
            disk_bytes_written: snap.value("store_disk_bytes_written_total"),
            disk_write_failures: snap.value("store_disk_write_failures_total"),
            peak_resident_bytes: snap.value("store_peak_resident_bytes"),
            resident_bytes: snap.value("store_resident_bytes"),
            resident_apps: snap.value("store_resident_apps"),
        }
    }

    /// Warm-hit fraction over all completed requests, in `[0, 1]`.
    /// Disk hits count as requests but not as (memory-)warm hits.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.disk_hits + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Builds the artifacts for one app id. Errors are returned to every
/// requester coalesced onto the failed load.
pub type Loader = dyn Fn(&str) -> Result<AppArtifacts, String> + Send + Sync;

/// One in-flight load: requesters park on the condvar until the loading
/// request publishes the shared result (the image plus how the loading
/// request produced it — waiters report [`Fetch::Coalesced`] regardless).
struct LoadSlot {
    #[allow(clippy::type_complexity)]
    result: Mutex<Option<Result<(Arc<AppArtifacts>, Fetch), String>>>,
    ready: Condvar,
}

/// One resident image with its accounting.
struct Resident {
    artifacts: Arc<AppArtifacts>,
    bytes: u64,
    /// Monotonic recency stamp; the minimum is the LRU victim.
    last_used: u64,
    /// The app's version epoch when this image was produced; a spill of
    /// this image is valid only while the epoch is still current.
    epoch: u64,
}

#[derive(Default)]
struct StoreInner {
    resident: HashMap<String, Resident>,
    loading: HashMap<String, Arc<LoadSlot>>,
    /// Per-app version epoch, bumped by [`AppStore::put`]. Absent means
    /// epoch 0 (the loader's pristine version).
    epochs: HashMap<String, u64>,
    total_bytes: u64,
    tick: u64,
}

/// The store's counters, backed by `store_*` metrics in a shared
/// [`MetricsRegistry`] (the observability migration of the old bare
/// `AtomicU64` struct — same increments, same values, but exportable
/// through the `metrics` op and the registry renderers).
struct Counters {
    hits: Counter,
    misses: Counter,
    coalesced: Counter,
    loads: Counter,
    load_failures: Counter,
    evictions: Counter,
    bytes_evicted: Counter,
    peak_resident_bytes: Gauge,
    resident_bytes: Gauge,
    resident_apps: Gauge,
    disk_hits: Counter,
    disk_misses: Counter,
    disk_invalidations: Counter,
    disk_writes: Counter,
    disk_bytes_written: Counter,
    disk_write_failures: Counter,
    disk_stale_spills: Counter,
}

impl Counters {
    fn register(registry: &MetricsRegistry) -> Counters {
        Counters {
            hits: registry.counter("store_hits_total"),
            misses: registry.counter("store_misses_total"),
            coalesced: registry.counter("store_coalesced_total"),
            loads: registry.counter("store_loads_total"),
            load_failures: registry.counter("store_load_failures_total"),
            evictions: registry.counter("store_evictions_total"),
            bytes_evicted: registry.counter("store_bytes_evicted_total"),
            peak_resident_bytes: registry.gauge("store_peak_resident_bytes"),
            resident_bytes: registry.gauge("store_resident_bytes"),
            resident_apps: registry.gauge("store_resident_apps"),
            disk_hits: registry.counter("store_disk_hits_total"),
            disk_misses: registry.counter("store_disk_misses_total"),
            disk_invalidations: registry.counter("store_disk_invalidations_total"),
            disk_writes: registry.counter("store_disk_writes_total"),
            disk_bytes_written: registry.counter("store_disk_bytes_written_total"),
            disk_write_failures: registry.counter("store_disk_write_failures_total"),
            disk_stale_spills: registry.counter("store_disk_stale_spills_total"),
        }
    }
}

/// The byte-budgeted, single-flight LRU store of resident app images,
/// optionally backed by an on-disk snapshot tier ([`DiskTier`]). All
/// methods take `&self`; the store is `Send + Sync` and meant to be
/// shared across every request-handling thread of a service.
///
/// With a disk tier, a cold `get` first tries to deserialize the app's
/// snapshot ([`Fetch::Disk`]); only if the snapshot is absent or invalid
/// does the loader re-parse, after which the fresh image's snapshot is
/// written **single-flight** (the in-flight load slot already guarantees
/// one writer per app). Eviction *spills*: a victim whose snapshot went
/// missing is re-written on its way out, so evicted apps stay disk-warm.
pub struct AppStore {
    budget_bytes: u64,
    loader: Box<Loader>,
    disk: Option<DiskTier>,
    inner: Mutex<StoreInner>,
    /// Per-app snapshot write guards: every disk write (first-load write,
    /// eviction spill, `put` re-write) serializes through the app's guard
    /// and re-validates the epoch inside it, so a spill captured against
    /// an older version can never clobber a newer snapshot. Guards are
    /// acquired only while `inner` is *not* held (lock order: guard, then
    /// inner), and the map itself is touched only long enough to clone an
    /// `Arc`.
    write_guards: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    registry: Arc<MetricsRegistry>,
    counters: Counters,
}

impl std::fmt::Debug for AppStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppStore")
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

/// What the locking phase of `get` decided to do. `Load` carries the
/// app's epoch at decision time: the image this load produces belongs to
/// that version, and both its residency and its snapshot write are
/// dropped if a [`AppStore::put`] bumps the epoch mid-load.
enum Step {
    Ready(Arc<AppArtifacts>),
    Wait(Arc<LoadSlot>),
    Load(Arc<LoadSlot>, u64),
}

impl AppStore {
    /// Creates a store with the given byte budget and loader. A budget of
    /// `0` caches nothing: every request cold-loads and the image is
    /// dropped from the store as soon as its requester holds it (this is
    /// what `backdroid-serve --direct` uses to produce golden
    /// direct-analysis runs through the identical code path).
    pub fn new(
        budget_bytes: u64,
        loader: impl Fn(&str) -> Result<AppArtifacts, String> + Send + Sync + 'static,
    ) -> Self {
        Self::over_registry(budget_bytes, None, Arc::new(MetricsRegistry::new()), loader)
    }

    /// Creates a two-tier store: the in-memory LRU backed by an on-disk
    /// snapshot directory. A zero byte budget combined with a disk tier
    /// keeps nothing in memory but still serves every repeat request
    /// from its snapshot — the pure "disk-warm" configuration.
    pub fn with_disk_tier(
        budget_bytes: u64,
        disk: DiskTier,
        loader: impl Fn(&str) -> Result<AppArtifacts, String> + Send + Sync + 'static,
    ) -> Self {
        Self::over_registry(
            budget_bytes,
            Some(disk),
            Arc::new(MetricsRegistry::new()),
            loader,
        )
    }

    /// Creates a store whose `store_*` metrics register into a caller-
    /// provided registry — how [`crate::Service`] keeps its own request
    /// counters and the store's in one exportable namespace.
    pub fn over_registry(
        budget_bytes: u64,
        disk: Option<DiskTier>,
        registry: Arc<MetricsRegistry>,
        loader: impl Fn(&str) -> Result<AppArtifacts, String> + Send + Sync + 'static,
    ) -> Self {
        let counters = Counters::register(&registry);
        AppStore {
            budget_bytes,
            loader: Box::new(loader),
            disk,
            inner: Mutex::default(),
            write_guards: Mutex::default(),
            registry,
            counters,
        }
    }

    /// The metrics registry this store's counters live in.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// The disk tier, if one is configured.
    pub fn disk_tier(&self) -> Option<&DiskTier> {
        self.disk.as_ref()
    }

    /// Estimated bytes currently resident (always `<= budget_bytes`).
    pub fn resident_bytes(&self) -> u64 {
        self.lock_inner().total_bytes
    }

    /// Number of app images currently resident.
    pub fn resident_apps(&self) -> usize {
        self.lock_inner().resident.len()
    }

    /// Whether `app_id` is resident right now (an in-flight load does not
    /// count).
    pub fn contains(&self, app_id: &str) -> bool {
        self.lock_inner().resident.contains_key(app_id)
    }

    /// Resident app ids from least- to most-recently used — the order
    /// eviction would take them in.
    pub fn lru_order(&self) -> Vec<String> {
        let inner = self.lock_inner();
        let mut ids: Vec<(u64, String)> = inner
            .resident
            .iter()
            .map(|(k, r)| (r.last_used, k.clone()))
            .collect();
        ids.sort();
        ids.into_iter().map(|(_, k)| k).collect()
    }

    /// Counter snapshot plus current residency — read back out of the
    /// metrics registry, the single source every stats view shares
    /// (see [`StoreStats::from_metrics`]).
    pub fn stats(&self) -> StoreStats {
        StoreStats::from_metrics(&self.registry.snapshot())
    }

    /// Returns the resident image for `app_id`, loading it single-flight
    /// if cold, plus how the request was served. Loader failures are
    /// shared with every coalesced waiter and **not** cached: the next
    /// request retries.
    pub fn get(&self, app_id: &str) -> Result<(Arc<AppArtifacts>, Fetch), String> {
        let step = {
            let mut inner = self.lock_inner();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(r) = inner.resident.get_mut(app_id) {
                r.last_used = tick;
                Step::Ready(Arc::clone(&r.artifacts))
            } else if let Some(slot) = inner.loading.get(app_id) {
                Step::Wait(Arc::clone(slot))
            } else {
                let slot = Arc::new(LoadSlot {
                    result: Mutex::new(None),
                    ready: Condvar::new(),
                });
                inner.loading.insert(app_id.to_string(), Arc::clone(&slot));
                let epoch = inner.epochs.get(app_id).copied().unwrap_or(0);
                Step::Load(slot, epoch)
            }
        };
        match step {
            Step::Ready(artifacts) => {
                self.counters.hits.inc();
                Ok((artifacts, Fetch::Hit))
            }
            Step::Wait(slot) => {
                self.counters.coalesced.inc();
                let mut done = slot.result.lock().expect("load slot poisoned");
                while done.is_none() {
                    done = slot.ready.wait(done).expect("load slot poisoned");
                }
                done.clone()
                    .expect("checked above")
                    .map(|(a, _)| (a, Fetch::Coalesced))
            }
            Step::Load(slot, epoch) => {
                let outcome = self.load_and_insert(app_id, epoch);
                // Publish after the store settled: a racing request either
                // still holds this slot (and wakes with the shared result)
                // or arrived after `loading` was cleared and sees the
                // resident image — never a stale slot.
                *slot.result.lock().expect("load slot poisoned") = Some(outcome.clone());
                slot.ready.notify_all();
                outcome
            }
        }
    }

    /// Serves one cold app: snapshot restore if the disk tier has a
    /// valid one, else the loader; inserts the image (publishing it to
    /// racing requests), evicts down to the budget, then writes the
    /// snapshot. Returns the image (which the caller holds by `Arc`
    /// even if the store immediately evicted it) and how it was
    /// produced.
    fn load_and_insert(
        &self,
        app_id: &str,
        epoch: u64,
    ) -> Result<(Arc<AppArtifacts>, Fetch), String> {
        let c = &self.counters;
        // Disk tier first: a valid snapshot skips the parse entirely.
        if let Some(disk) = &self.disk {
            match disk.load(app_id) {
                Ok(Some(artifacts)) => {
                    c.disk_hits.inc();
                    c.loads.inc();
                    let artifacts = self.insert_at(app_id, artifacts, epoch);
                    return Ok((artifacts, Fetch::Disk));
                }
                Ok(None) => {
                    c.disk_misses.inc();
                }
                Err(_) => {
                    // Truncated / corrupt / version-bumped snapshot:
                    // invalidate it and fall back to a fresh parse.
                    c.disk_invalidations.inc();
                    disk.invalidate(app_id);
                }
            }
        }
        c.misses.inc();
        match (self.loader)(app_id) {
            Ok(artifacts) => {
                // Publish before persisting: once `insert_at` returns,
                // the image is resident and racing requests take warm
                // hits instead of parking on the load slot for the
                // duration of the snapshot write. The write itself is
                // guarded and epoch-checked, so if a `put` replaced the
                // app mid-load this stale image neither sticks in memory
                // nor reaches disk.
                c.loads.inc();
                let artifacts = self.insert_at(app_id, artifacts, epoch);
                self.spill_guarded(app_id, &artifacts, epoch);
                Ok((artifacts, Fetch::Miss))
            }
            Err(e) => {
                c.load_failures.inc();
                self.lock_inner().loading.remove(app_id);
                Err(e)
            }
        }
    }

    /// Inserts a freshly produced image belonging to version `epoch`,
    /// evicts down to the budget, and spills any victim whose snapshot
    /// went missing — all snapshot I/O happens outside the store lock.
    /// If the app's epoch moved past `epoch` while the image was being
    /// produced (a concurrent [`AppStore::put`]), the image is returned
    /// to its requester but **not** made resident: the request began
    /// against the old version and may keep it, but the store must not
    /// shadow the newer one.
    fn insert_at(&self, app_id: &str, artifacts: AppArtifacts, epoch: u64) -> Arc<AppArtifacts> {
        let bytes = artifacts.estimated_bytes();
        let artifacts = Arc::new(artifacts);
        let victims = {
            let mut inner = self.lock_inner();
            inner.loading.remove(app_id);
            if inner.epochs.get(app_id).copied().unwrap_or(0) != epoch {
                return artifacts;
            }
            inner.tick += 1;
            let tick = inner.tick;
            inner.total_bytes += bytes;
            if let Some(old) = inner.resident.insert(
                app_id.to_string(),
                Resident {
                    artifacts: Arc::clone(&artifacts),
                    bytes,
                    last_used: tick,
                    epoch,
                },
            ) {
                inner.total_bytes -= old.bytes;
            }
            let victims = self.evict_to_budget(&mut inner);
            self.counters.peak_resident_bytes.set_max(inner.total_bytes);
            // Publish residency into the registry while still holding
            // the lock, so the gauges always agree with the store state.
            self.counters.resident_bytes.set(inner.total_bytes);
            self.counters.resident_apps.set(inner.resident.len() as u64);
            victims
        };
        for (id, gone, victim_epoch) in &victims {
            self.spill_guarded(id, gone, *victim_epoch);
        }
        artifacts
    }

    /// The app's per-snapshot write guard, created on first use.
    fn write_guard(&self, app_id: &str) -> Arc<Mutex<()>> {
        let mut guards = self.write_guards.lock().expect("write guards poisoned");
        Arc::clone(guards.entry(app_id.to_string()).or_default())
    }

    /// The app's current version epoch.
    fn current_epoch(&self, app_id: &str) -> u64 {
        self.lock_inner().epochs.get(app_id).copied().unwrap_or(0)
    }

    /// Writes `artifacts` to the disk tier (if configured) under the
    /// app's write guard, re-validating inside the guard that `epoch` is
    /// still the app's current version — the fix for the old
    /// check-then-write race where an eviction spill of version *n*
    /// could re-create a snapshot a concurrent `put` of version *n+1*
    /// had just invalidated. An existing snapshot is left alone (it was
    /// written under the same guard for the same epoch, so its content
    /// is already current). Failures are counted and otherwise ignored —
    /// the snapshot tier is a cache, never a correctness dependency.
    fn spill_guarded(&self, app_id: &str, artifacts: &AppArtifacts, epoch: u64) {
        let Some(disk) = &self.disk else { return };
        let guard = self.write_guard(app_id);
        let _held = guard.lock().expect("snapshot write guard poisoned");
        if self.current_epoch(app_id) != epoch {
            self.counters.disk_stale_spills.inc();
            return;
        }
        if disk.path_for(app_id).exists() {
            return;
        }
        match disk.store(app_id, artifacts) {
            Ok(written) => {
                self.counters.disk_writes.inc();
                self.counters.disk_bytes_written.add(written);
            }
            Err(_) => {
                self.counters.disk_write_failures.inc();
            }
        }
    }

    /// Publishes a **new version** of `app_id`: bumps the app's epoch
    /// (detaching any in-flight load or spill of the old version),
    /// drops the old resident image, invalidates the old snapshot under
    /// the write guard, then inserts and persists the new image. This
    /// is the serving path of an app *update* — see
    /// [`crate::Service::put_version`].
    ///
    /// The loader still produces the app's *pristine* version, so after
    /// a `put` the updated image is authoritative only while it is
    /// resident or disk-warm; callers that update apps should configure
    /// a disk tier or keep the returned `Arc` (the service pins the
    /// current version per app for exactly this reason).
    pub fn put(&self, app_id: &str, artifacts: AppArtifacts) -> Arc<AppArtifacts> {
        let epoch = {
            let mut inner = self.lock_inner();
            let slot = inner.epochs.entry(app_id.to_string()).or_insert(0);
            *slot += 1;
            let epoch = *slot;
            if let Some(old) = inner.resident.remove(app_id) {
                inner.total_bytes -= old.bytes;
                self.counters.resident_bytes.set(inner.total_bytes);
                self.counters.resident_apps.set(inner.resident.len() as u64);
            }
            epoch
        };
        if let Some(disk) = &self.disk {
            // Invalidate under the guard so a concurrent guarded spill
            // cannot slip between the removal and the new write; any
            // spill still carrying the old epoch now skips itself.
            let guard = self.write_guard(app_id);
            let _held = guard.lock().expect("snapshot write guard poisoned");
            disk.invalidate(app_id);
        }
        let artifacts = self.insert_at(app_id, artifacts, epoch);
        self.spill_guarded(app_id, &artifacts, epoch);
        artifacts
    }

    /// Evicts least-recently-used images until the resident total fits
    /// the budget, returning the victims so the caller can spill them to
    /// the disk tier outside the lock. The entry just inserted carries
    /// the newest recency stamp, so it goes last — and does go, if it
    /// alone overflows the budget.
    fn evict_to_budget(&self, inner: &mut StoreInner) -> Vec<(String, Arc<AppArtifacts>, u64)> {
        let mut victims = Vec::new();
        while inner.total_bytes > self.budget_bytes {
            let victim = inner
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let gone = inner.resident.remove(&key).expect("victim just seen");
            inner.total_bytes -= gone.bytes;
            self.counters.evictions.inc();
            self.counters.bytes_evicted.add(gone.bytes);
            victims.push((key, gone.artifacts, gone.epoch));
        }
        victims
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("app store poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
    use std::sync::atomic::AtomicUsize;

    /// A loader over tiny generated apps; `classes` scales the size so
    /// tests can pick meaningful budgets.
    fn tiny_loader(classes: usize) -> impl Fn(&str) -> Result<AppArtifacts, String> {
        move |id: &str| {
            if id == "missing" {
                return Err(format!("unknown app {id:?}"));
            }
            let app = AppSpec::named(format!("com.store.{id}"))
                .with_scenario(Scenario::new(
                    Mechanism::DirectEntry,
                    SinkKind::Cipher,
                    true,
                ))
                .with_filler(classes, 3, 4)
                .generate();
            Ok(AppArtifacts::new(app.program, app.manifest))
        }
    }

    /// Image size for a one-character app id — ids of equal length
    /// produce equal-sized images (the id feeds the generated class
    /// names, so its length shows up in the dump).
    fn one_image_bytes(classes: usize) -> u64 {
        tiny_loader(classes)("x").unwrap().estimated_bytes()
    }

    #[test]
    fn hits_misses_and_lru_eviction() {
        let bytes = one_image_bytes(4);
        // Room for two images, not three.
        let store = AppStore::new(bytes * 2 + bytes / 2, tiny_loader(4));
        assert_eq!(store.get("a").unwrap().1, Fetch::Miss);
        assert_eq!(store.get("b").unwrap().1, Fetch::Miss);
        assert_eq!(store.get("a").unwrap().1, Fetch::Hit, "a is resident");
        assert_eq!(store.lru_order(), vec!["b".to_string(), "a".to_string()]);
        // Loading c evicts the least recently used image: b.
        assert_eq!(store.get("c").unwrap().1, Fetch::Miss);
        assert_eq!(store.lru_order(), vec!["a".to_string(), "c".to_string()]);
        assert!(!store.contains("b"));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.loads), (1, 3, 3));
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes_evicted, bytes);
        assert!(stats.resident_bytes <= store.budget_bytes());
        assert!(stats.peak_resident_bytes <= store.budget_bytes());
    }

    #[test]
    fn zero_budget_store_caches_nothing_but_serves_everything() {
        let store = AppStore::new(0, tiny_loader(3));
        for _ in 0..3 {
            let (artifacts, fetch) = store.get("a").unwrap();
            assert_eq!(fetch, Fetch::Miss, "nothing is ever resident");
            assert!(artifacts.program().method_count() > 0);
        }
        let stats = store.stats();
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.peak_resident_bytes, 0);
    }

    #[test]
    fn load_failures_are_reported_and_not_cached() {
        let store = AppStore::new(u64::MAX, tiny_loader(3));
        assert!(store.get("missing").is_err());
        assert!(store.get("missing").is_err(), "failure is retried");
        let stats = store.stats();
        assert_eq!(stats.load_failures, 2);
        assert_eq!(stats.loads, 0);
        assert_eq!(stats.resident_apps, 0);
    }

    /// A scratch directory under the target-adjacent temp root, removed
    /// on drop (no tempfile crate in the vendored stack).
    struct ScratchDir(std::path::PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("backdroid-store-test-{tag}-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            ScratchDir(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn disk_tier_serves_repeat_cold_loads_from_snapshots() {
        let scratch = ScratchDir::new("serve");
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        // Zero budget: nothing stays in memory, so every repeat request
        // must come back from disk.
        let store = AppStore::with_disk_tier(0, tier, tiny_loader(3));
        let (first, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Miss, "no snapshot yet: full parse");
        let (second, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Disk, "restored from the snapshot");
        assert_eq!(
            first.to_snapshot(),
            second.to_snapshot(),
            "parsed and restored images snapshot identically"
        );
        let stats = store.stats();
        assert_eq!(
            (stats.misses, stats.disk_hits, stats.disk_misses),
            (1, 1, 1)
        );
        assert_eq!(stats.disk_writes, 1, "single-flight write on first load");
        assert!(stats.disk_bytes_written > 0);
        assert_eq!(stats.loads, 2, "both requests produced an image");
    }

    #[test]
    fn corrupt_and_version_bumped_snapshots_fall_back_to_reparse() {
        let scratch = ScratchDir::new("corrupt");
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        let path = tier.path_for("a");
        let store = AppStore::with_disk_tier(0, tier, tiny_loader(3));
        store.get("a").unwrap();

        // Flip one payload byte: checksum mismatch → invalidate → reparse.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let (_, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Miss, "corrupt snapshot must not serve");
        let stats = store.stats();
        assert_eq!(stats.disk_invalidations, 1);
        assert_eq!(stats.disk_writes, 2, "reparse re-wrote the snapshot");

        // Bump the version field: same invalidation path.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = bytes[8].wrapping_add(1);
        std::fs::write(&path, &bytes).unwrap();
        let (_, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        assert_eq!(store.stats().disk_invalidations, 2);

        // A stale older format (a leftover version-1 file from before
        // the sectioned layout): invalidate and reparse, never serve.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] = 1;
        std::fs::write(&path, &bytes).unwrap();
        let (_, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Miss, "stale-version snapshot must not serve");
        assert_eq!(store.stats().disk_invalidations, 3);

        // Truncate: same again.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        let (_, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        assert_eq!(store.stats().disk_invalidations, 4);

        // The re-written snapshot serves again.
        assert_eq!(store.get("a").unwrap().1, Fetch::Disk);
    }

    #[test]
    fn eviction_spills_missing_snapshots_to_disk() {
        let scratch = ScratchDir::new("spill");
        let bytes = one_image_bytes(4);
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        let path_a = tier.path_for("a");
        let store = AppStore::with_disk_tier(bytes * 2 + bytes / 2, tier, tiny_loader(4));
        store.get("a").unwrap();
        store.get("b").unwrap();
        // Delete a's snapshot behind the store's back, then force its
        // eviction: the spill must restore the file.
        std::fs::remove_file(&path_a).unwrap();
        store.get("c").unwrap(); // evicts a (LRU)
        assert!(!store.contains("a"));
        assert!(path_a.exists(), "eviction spilled the missing snapshot");
        // And the spilled snapshot is served on the next request for a.
        assert_eq!(store.get("a").unwrap().1, Fetch::Disk);
    }

    #[test]
    fn app_ids_escape_into_safe_filenames() {
        let tier = DiskTier::new("/tmp/x", backdroid_core::BackendChoice::default());
        let p = tier.path_for("../../etc/passwd");
        let name = p.file_name().unwrap().to_string_lossy().into_owned();
        assert_eq!(name, "%2E%2E%2F%2E%2E%2Fetc%2Fpasswd.snap");
        assert_eq!(p.parent().unwrap(), std::path::Path::new("/tmp/x"));
        // Distinct ids never collide.
        assert_ne!(tier.path_for("a.b"), tier.path_for("a%2Eb"));
        assert_eq!(
            tier.path_for("7").file_name().unwrap().to_string_lossy(),
            "7.snap"
        );
    }

    #[test]
    fn concurrent_cold_burst_loads_exactly_once() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let store = AppStore::new(u64::MAX, move |id: &str| {
            c.fetch_add(1, Ordering::SeqCst);
            // Widen the race window so waiters really coalesce.
            std::thread::sleep(std::time::Duration::from_millis(20));
            tiny_loader(3)(id)
        });
        let n = 8;
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    let (artifacts, _) = store.get("hot").unwrap();
                    assert!(artifacts.program().method_count() > 0);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single-flight");
        let stats = store.stats();
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.hits + stats.misses + stats.coalesced, n);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn put_replaces_resident_image_and_snapshot() {
        let scratch = ScratchDir::new("put");
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        let store = AppStore::with_disk_tier(u64::MAX, tier, tiny_loader(3));
        let (v1, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Miss);
        let v2 = tiny_loader(6)("a").unwrap();
        let v2_classes = v2.program().class_count();
        assert_ne!(v1.program().class_count(), v2_classes);
        store.put("a", v2);
        // The resident image is the new version.
        let (now, fetch) = store.get("a").unwrap();
        assert_eq!(fetch, Fetch::Hit);
        assert_eq!(now.program().class_count(), v2_classes);
        // And so is the snapshot: a fresh store over the same directory
        // restores the updated version, not the loader's pristine one.
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        let cold = AppStore::with_disk_tier(u64::MAX, tier, tiny_loader(3));
        let (restored, fetch) = cold.get("a").unwrap();
        assert_eq!(fetch, Fetch::Disk);
        assert_eq!(restored.program().class_count(), v2_classes);
    }

    #[test]
    fn stale_spill_cannot_resurrect_an_old_snapshot() {
        let scratch = ScratchDir::new("stale");
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        let path = tier.path_for("a");
        let store = AppStore::with_disk_tier(u64::MAX, tier, tiny_loader(3));
        let (v1, _) = store.get("a").unwrap(); // epoch 0, snapshot written
        store.put("a", tiny_loader(6)("a").unwrap()); // epoch 1
        let v2_bytes = std::fs::read(&path).unwrap();
        // Replay the racing eviction spill of the old image exactly as
        // the eviction path would issue it: the epoch it captured when
        // the image was inserted (0) is no longer current, so even with
        // the snapshot file missing the write must be skipped.
        std::fs::remove_file(&path).unwrap();
        store.spill_guarded("a", &v1, 0);
        assert!(!path.exists(), "stale spill must not re-create the file");
        assert_eq!(
            store
                .metrics()
                .snapshot()
                .value("store_disk_stale_spills_total"),
            1
        );
        // A spill carrying the current epoch restores the new version.
        let (current, _) = store.get("a").unwrap();
        store.spill_guarded("a", &current, 1);
        assert_eq!(std::fs::read(&path).unwrap(), v2_bytes);
    }

    #[test]
    fn interleaved_puts_gets_and_evictions_leave_the_final_version_on_disk() {
        let scratch = ScratchDir::new("race");
        let bytes = one_image_bytes(3);
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        // Room for about one image: every insertion evicts, so put-path
        // writes and eviction spills interleave constantly.
        let store = AppStore::with_disk_tier(bytes + bytes / 2, tier, tiny_loader(3));
        store.get("a").unwrap();
        let final_version = tiny_loader(7)("a").unwrap();
        let final_classes = final_version.program().class_count();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for classes in [4, 5, 6] {
                    store.put("a", tiny_loader(classes)("a").unwrap());
                }
                store.put("a", final_version);
            });
            scope.spawn(|| {
                for _ in 0..8 {
                    store.get("b").unwrap();
                    store.get("c").unwrap();
                }
            });
        });
        // Whatever interleaving of spills and puts happened, the disk
        // tier must hold the last published version of `a`.
        let tier = DiskTier::new(&scratch.0, backdroid_core::BackendChoice::default());
        let cold = AppStore::with_disk_tier(u64::MAX, tier, tiny_loader(3));
        let (restored, fetch) = cold.get("a").unwrap();
        assert_eq!(fetch, Fetch::Disk, "the final put left a snapshot behind");
        assert_eq!(restored.program().class_count(), final_classes);
    }
}
