//! The resident app store: `Arc<AppArtifacts>` keyed by app id, bounded
//! by a **byte budget** with LRU eviction, and loaded **single-flight**
//! — when N requests race for a cold app, exactly one builds its image
//! (encode → disassemble → index) while the rest wait on the in-flight
//! slot and share the result. This mirrors, one layer up, the sharded
//! single-flight command cache already proven inside
//! [`SearchEngine`](backdroid_search::SearchEngine): there the unit of
//! work is one search command, here it is one whole app image.
//!
//! ## Invariants
//!
//! * **Budget**: after every insertion settles, the resident total is
//!   `<= budget_bytes` — least-recently-used images are evicted first
//!   (an image larger than the whole budget is served to its requester
//!   and immediately dropped from the store, so the invariant holds even
//!   then). [`AppStore::resident_bytes`] can therefore never observe an
//!   over-budget store.
//! * **Single-flight**: for any interleaving of concurrent `get`s, the
//!   loader runs exactly once per cold app; `StoreStats::loads` counts
//!   loader executions and `coalesced` the requests that waited on one.
//! * **Determinism**: sizes come from
//!   [`AppArtifacts::estimated_bytes`], a pure function of the app, so
//!   a given request order always produces the same eviction sequence.

use backdroid_core::AppArtifacts;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// How one [`AppStore::get`] was served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fetch {
    /// The app image was resident — a warm hit.
    Hit,
    /// The image was cold; this request ran the loader.
    Miss,
    /// The image was cold but another request was already loading it;
    /// this request waited and shares that load's result.
    Coalesced,
}

/// Snapshot of the store's monotonic counters plus its current residency.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct StoreStats {
    /// Requests served from a resident image.
    pub hits: u64,
    /// Requests that found the image cold and ran the loader.
    pub misses: u64,
    /// Requests that piggybacked on another request's in-flight load.
    pub coalesced: u64,
    /// Loader executions that produced an image.
    pub loads: u64,
    /// Loader executions that failed.
    pub load_failures: u64,
    /// Images evicted to stay under the byte budget.
    pub evictions: u64,
    /// Total estimated bytes of evicted images.
    pub bytes_evicted: u64,
    /// Largest resident total ever observed after an insertion settled
    /// (never exceeds the budget — the store evicts before it reports).
    pub peak_resident_bytes: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: u64,
    /// Images currently resident.
    pub resident_apps: u64,
}

impl StoreStats {
    /// Warm-hit fraction over all completed requests, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses + self.coalesced;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Builds the artifacts for one app id. Errors are returned to every
/// requester coalesced onto the failed load.
pub type Loader = dyn Fn(&str) -> Result<AppArtifacts, String> + Send + Sync;

/// One in-flight load: requesters park on the condvar until the loading
/// request publishes the shared result.
struct LoadSlot {
    result: Mutex<Option<Result<Arc<AppArtifacts>, String>>>,
    ready: Condvar,
}

/// One resident image with its accounting.
struct Resident {
    artifacts: Arc<AppArtifacts>,
    bytes: u64,
    /// Monotonic recency stamp; the minimum is the LRU victim.
    last_used: u64,
}

#[derive(Default)]
struct StoreInner {
    resident: HashMap<String, Resident>,
    loading: HashMap<String, Arc<LoadSlot>>,
    total_bytes: u64,
    tick: u64,
}

#[derive(Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    loads: AtomicU64,
    load_failures: AtomicU64,
    evictions: AtomicU64,
    bytes_evicted: AtomicU64,
    peak_resident_bytes: AtomicU64,
}

/// The byte-budgeted, single-flight LRU store of resident app images.
/// All methods take `&self`; the store is `Send + Sync` and meant to be
/// shared across every request-handling thread of a service.
pub struct AppStore {
    budget_bytes: u64,
    loader: Box<Loader>,
    inner: Mutex<StoreInner>,
    counters: Counters,
}

impl std::fmt::Debug for AppStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppStore")
            .field("budget_bytes", &self.budget_bytes)
            .field("stats", &self.stats())
            .finish()
    }
}

/// What the locking phase of `get` decided to do.
enum Step {
    Ready(Arc<AppArtifacts>),
    Wait(Arc<LoadSlot>),
    Load(Arc<LoadSlot>),
}

impl AppStore {
    /// Creates a store with the given byte budget and loader. A budget of
    /// `0` caches nothing: every request cold-loads and the image is
    /// dropped from the store as soon as its requester holds it (this is
    /// what `backdroid-serve --direct` uses to produce golden
    /// direct-analysis runs through the identical code path).
    pub fn new(
        budget_bytes: u64,
        loader: impl Fn(&str) -> Result<AppArtifacts, String> + Send + Sync + 'static,
    ) -> Self {
        AppStore {
            budget_bytes,
            loader: Box::new(loader),
            inner: Mutex::default(),
            counters: Counters::default(),
        }
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget_bytes
    }

    /// Estimated bytes currently resident (always `<= budget_bytes`).
    pub fn resident_bytes(&self) -> u64 {
        self.lock_inner().total_bytes
    }

    /// Number of app images currently resident.
    pub fn resident_apps(&self) -> usize {
        self.lock_inner().resident.len()
    }

    /// Whether `app_id` is resident right now (an in-flight load does not
    /// count).
    pub fn contains(&self, app_id: &str) -> bool {
        self.lock_inner().resident.contains_key(app_id)
    }

    /// Resident app ids from least- to most-recently used — the order
    /// eviction would take them in.
    pub fn lru_order(&self) -> Vec<String> {
        let inner = self.lock_inner();
        let mut ids: Vec<(u64, String)> = inner
            .resident
            .iter()
            .map(|(k, r)| (r.last_used, k.clone()))
            .collect();
        ids.sort();
        ids.into_iter().map(|(_, k)| k).collect()
    }

    /// Counter snapshot plus current residency.
    pub fn stats(&self) -> StoreStats {
        let (resident_bytes, resident_apps) = {
            let inner = self.lock_inner();
            (inner.total_bytes, inner.resident.len() as u64)
        };
        let c = &self.counters;
        StoreStats {
            hits: c.hits.load(Ordering::Relaxed),
            misses: c.misses.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            loads: c.loads.load(Ordering::Relaxed),
            load_failures: c.load_failures.load(Ordering::Relaxed),
            evictions: c.evictions.load(Ordering::Relaxed),
            bytes_evicted: c.bytes_evicted.load(Ordering::Relaxed),
            peak_resident_bytes: c.peak_resident_bytes.load(Ordering::Relaxed),
            resident_bytes,
            resident_apps,
        }
    }

    /// Returns the resident image for `app_id`, loading it single-flight
    /// if cold, plus how the request was served. Loader failures are
    /// shared with every coalesced waiter and **not** cached: the next
    /// request retries.
    pub fn get(&self, app_id: &str) -> Result<(Arc<AppArtifacts>, Fetch), String> {
        let step = {
            let mut inner = self.lock_inner();
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(r) = inner.resident.get_mut(app_id) {
                r.last_used = tick;
                Step::Ready(Arc::clone(&r.artifacts))
            } else if let Some(slot) = inner.loading.get(app_id) {
                Step::Wait(Arc::clone(slot))
            } else {
                let slot = Arc::new(LoadSlot {
                    result: Mutex::new(None),
                    ready: Condvar::new(),
                });
                inner.loading.insert(app_id.to_string(), Arc::clone(&slot));
                Step::Load(slot)
            }
        };
        match step {
            Step::Ready(artifacts) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Ok((artifacts, Fetch::Hit))
            }
            Step::Wait(slot) => {
                self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                let mut done = slot.result.lock().expect("load slot poisoned");
                while done.is_none() {
                    done = slot.ready.wait(done).expect("load slot poisoned");
                }
                done.clone()
                    .expect("checked above")
                    .map(|a| (a, Fetch::Coalesced))
            }
            Step::Load(slot) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                let outcome = self.load_and_insert(app_id);
                // Publish after the store settled: a racing request either
                // still holds this slot (and wakes with the shared result)
                // or arrived after `loading` was cleared and sees the
                // resident image — never a stale slot.
                *slot.result.lock().expect("load slot poisoned") = Some(outcome.clone());
                slot.ready.notify_all();
                outcome.map(|a| (a, Fetch::Miss))
            }
        }
    }

    /// Runs the loader for one cold app, inserts the image, and evicts
    /// down to the budget. Returns the image (which the caller holds by
    /// `Arc` even if the store immediately evicted it).
    fn load_and_insert(&self, app_id: &str) -> Result<Arc<AppArtifacts>, String> {
        match (self.loader)(app_id) {
            Ok(artifacts) => {
                let bytes = artifacts.estimated_bytes();
                let artifacts = Arc::new(artifacts);
                let mut inner = self.lock_inner();
                inner.loading.remove(app_id);
                inner.tick += 1;
                let tick = inner.tick;
                inner.total_bytes += bytes;
                inner.resident.insert(
                    app_id.to_string(),
                    Resident {
                        artifacts: Arc::clone(&artifacts),
                        bytes,
                        last_used: tick,
                    },
                );
                self.counters.loads.fetch_add(1, Ordering::Relaxed);
                self.evict_to_budget(&mut inner);
                self.counters
                    .peak_resident_bytes
                    .fetch_max(inner.total_bytes, Ordering::Relaxed);
                Ok(artifacts)
            }
            Err(e) => {
                self.counters.load_failures.fetch_add(1, Ordering::Relaxed);
                self.lock_inner().loading.remove(app_id);
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used images until the resident total fits
    /// the budget. The entry just inserted carries the newest recency
    /// stamp, so it goes last — and does go, if it alone overflows the
    /// budget.
    fn evict_to_budget(&self, inner: &mut StoreInner) {
        while inner.total_bytes > self.budget_bytes {
            let victim = inner
                .resident
                .iter()
                .min_by_key(|(_, r)| r.last_used)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            let gone = inner.resident.remove(&key).expect("victim just seen");
            inner.total_bytes -= gone.bytes;
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
            self.counters
                .bytes_evicted
                .fetch_add(gone.bytes, Ordering::Relaxed);
        }
    }

    fn lock_inner(&self) -> std::sync::MutexGuard<'_, StoreInner> {
        self.inner.lock().expect("app store poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backdroid_appgen::{AppSpec, Mechanism, Scenario, SinkKind};
    use std::sync::atomic::AtomicUsize;

    /// A loader over tiny generated apps; `classes` scales the size so
    /// tests can pick meaningful budgets.
    fn tiny_loader(classes: usize) -> impl Fn(&str) -> Result<AppArtifacts, String> {
        move |id: &str| {
            if id == "missing" {
                return Err(format!("unknown app {id:?}"));
            }
            let app = AppSpec::named(format!("com.store.{id}"))
                .with_scenario(Scenario::new(
                    Mechanism::DirectEntry,
                    SinkKind::Cipher,
                    true,
                ))
                .with_filler(classes, 3, 4)
                .generate();
            Ok(AppArtifacts::new(app.program, app.manifest))
        }
    }

    /// Image size for a one-character app id — ids of equal length
    /// produce equal-sized images (the id feeds the generated class
    /// names, so its length shows up in the dump).
    fn one_image_bytes(classes: usize) -> u64 {
        tiny_loader(classes)("x").unwrap().estimated_bytes()
    }

    #[test]
    fn hits_misses_and_lru_eviction() {
        let bytes = one_image_bytes(4);
        // Room for two images, not three.
        let store = AppStore::new(bytes * 2 + bytes / 2, tiny_loader(4));
        assert_eq!(store.get("a").unwrap().1, Fetch::Miss);
        assert_eq!(store.get("b").unwrap().1, Fetch::Miss);
        assert_eq!(store.get("a").unwrap().1, Fetch::Hit, "a is resident");
        assert_eq!(store.lru_order(), vec!["b".to_string(), "a".to_string()]);
        // Loading c evicts the least recently used image: b.
        assert_eq!(store.get("c").unwrap().1, Fetch::Miss);
        assert_eq!(store.lru_order(), vec!["a".to_string(), "c".to_string()]);
        assert!(!store.contains("b"));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.loads), (1, 3, 3));
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.bytes_evicted, bytes);
        assert!(stats.resident_bytes <= store.budget_bytes());
        assert!(stats.peak_resident_bytes <= store.budget_bytes());
    }

    #[test]
    fn zero_budget_store_caches_nothing_but_serves_everything() {
        let store = AppStore::new(0, tiny_loader(3));
        for _ in 0..3 {
            let (artifacts, fetch) = store.get("a").unwrap();
            assert_eq!(fetch, Fetch::Miss, "nothing is ever resident");
            assert!(artifacts.program().method_count() > 0);
        }
        let stats = store.stats();
        assert_eq!(stats.loads, 3);
        assert_eq!(stats.evictions, 3);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.peak_resident_bytes, 0);
    }

    #[test]
    fn load_failures_are_reported_and_not_cached() {
        let store = AppStore::new(u64::MAX, tiny_loader(3));
        assert!(store.get("missing").is_err());
        assert!(store.get("missing").is_err(), "failure is retried");
        let stats = store.stats();
        assert_eq!(stats.load_failures, 2);
        assert_eq!(stats.loads, 0);
        assert_eq!(stats.resident_apps, 0);
    }

    #[test]
    fn concurrent_cold_burst_loads_exactly_once() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&calls);
        let store = AppStore::new(u64::MAX, move |id: &str| {
            c.fetch_add(1, Ordering::SeqCst);
            // Widen the race window so waiters really coalesce.
            std::thread::sleep(std::time::Duration::from_millis(20));
            tiny_loader(3)(id)
        });
        let n = 8;
        std::thread::scope(|scope| {
            for _ in 0..n {
                scope.spawn(|| {
                    let (artifacts, _) = store.get("hot").unwrap();
                    assert!(artifacts.program().method_count() > 0);
                });
            }
        });
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single-flight");
        let stats = store.stats();
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.hits + stats.misses + stats.coalesced, n);
        assert_eq!(stats.misses, 1);
    }
}
