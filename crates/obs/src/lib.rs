//! # backdroid-obs
//!
//! The zero-dependency observability substrate for the BackDroid
//! serving stack: a [`MetricsRegistry`] of atomic counters, gauges, and
//! log2-bucketed latency [`Histogram`]s with deterministic JSON and
//! Prometheus-style renderers, plus a per-request span [`Tracer`] whose
//! normalized JSONL export is byte-identical across replays of the same
//! workload (see [`trace`]'s module docs for the contract).
//!
//! Hand-rolled on `std` atomics only — the workspace builds offline, so
//! no metrics or tracing ecosystem crates are available, and none are
//! needed: the serving layer's determinism story demands full control
//! over rendering order anyway.
//!
//! ```
//! use backdroid_obs::MetricsRegistry;
//!
//! let reg = MetricsRegistry::new();
//! reg.counter("requests_total").inc();
//! reg.histogram("latency_ns").record(1_500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.value("requests_total"), 1);
//! assert!(snap.render_json().starts_with("{\"latency_ns\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_of, bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue,
    MetricsRegistry, RegistrySnapshot, HISTOGRAM_BUCKETS,
};
pub use trace::{SpanRecord, TraceBuilder, Tracer};

/// Escapes a string for embedding in a JSON string literal: quotes,
/// backslashes, and control characters. Local to this crate — the
/// serving layer has its own escaper and the two are never mixed in one
/// document.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
