//! The tracing half of the observability substrate: per-request span
//! trees recorded into a bounded ring buffer, exportable as JSONL.
//!
//! A request becomes a *trace*: a root span plus child phase spans
//! (queue wait, store fetch, analysis phases, emit), each carrying two
//! attribute sets — **deterministic** attrs (`attrs`: the request op,
//! app id, phase structure — pure functions of the workload) and
//! **wall** attrs (`wall`: durations, fetch tiers, shard indices —
//! facts of one particular run). The normalized export keeps only the
//! deterministic skeleton, sorts by `(trace, span)`, and zeroes
//! timestamps, so two replays of the same workload — at any shard
//! count — render byte-identical JSONL that CI can `diff`.
//!
//! The ring is lock-free on the claim path: a fetch-add cursor picks
//! the slot, and each slot is its own tiny mutex held only for the
//! record swap. When the ring wraps, the oldest spans are overwritten
//! and counted in [`Tracer::dropped`] — a wrapped ring is no longer
//! replay-diffable, so size the capacity to the workload (the CLI
//! default is ample for the CI replay files).

use crate::escape_json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One closed span: a node of a per-request trace tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to (the request sequence number).
    pub trace_id: u64,
    /// This span's id, unique and dense within the trace (`0` = root).
    pub span_id: u32,
    /// The parent span's id; `None` for the root.
    pub parent: Option<u32>,
    /// The phase name (`"request"`, `"queue"`, `"fetch"`, ...).
    pub name: String,
    /// Deterministic attributes — pure functions of the workload; kept
    /// by the normalized export.
    pub attrs: Vec<(String, String)>,
    /// Wall-clock / topology attributes (durations, fetch tier, shard
    /// index); dropped by the normalized export.
    pub wall: Vec<(String, String)>,
    /// Start offset in nanoseconds since the tracer's origin.
    pub start_ns: u64,
    /// End offset in nanoseconds since the tracer's origin.
    pub end_ns: u64,
}

fn render_attrs(attrs: &[(String, String)]) -> String {
    let fields: Vec<String> = attrs
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", fields.join(","))
}

impl SpanRecord {
    fn render(&self, normalized: bool) -> String {
        let parent = match self.parent {
            Some(p) => p.to_string(),
            None => "null".into(),
        };
        let mut out = format!(
            "{{\"trace\":{},\"span\":{},\"parent\":{parent},\"name\":\"{}\",\"attrs\":{}",
            self.trace_id,
            self.span_id,
            escape_json(&self.name),
            render_attrs(&self.attrs),
        );
        if normalized {
            out.push_str(",\"start\":0,\"end\":0}");
        } else {
            out.push_str(&format!(
                ",\"wall\":{},\"start\":{},\"end\":{}}}",
                render_attrs(&self.wall),
                self.start_ns,
                self.end_ns
            ));
        }
        out
    }
}

/// A bounded ring of closed spans, shared by every worker of a serving
/// topology. See the module docs for the determinism contract.
#[derive(Debug)]
pub struct Tracer {
    slots: Vec<Mutex<Option<SpanRecord>>>,
    cursor: AtomicU64,
    origin: Instant,
}

impl Tracer {
    /// A tracer whose ring holds up to `capacity` spans (minimum 1).
    pub fn with_capacity(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            origin: Instant::now(),
        }
    }

    /// Starts building the span tree for one request.
    pub fn begin(&self, trace_id: u64) -> TraceBuilder {
        TraceBuilder {
            trace_id,
            origin: self.origin,
            spans: Vec::with_capacity(4),
        }
    }

    /// Records one closed span into the ring.
    pub fn record(&self, span: SpanRecord) {
        let claim = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = (claim % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("trace slot lock") = Some(span);
    }

    /// Total spans recorded (including any later overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Spans lost to ring wrap-around. Nonzero means the exports are
    /// partial and no longer replay-diffable.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// A copy of every retained span, sorted by `(trace, span)` — the
    /// deterministic export order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("trace slot lock").clone())
            .collect();
        spans.sort_by_key(|s| (s.trace_id, s.span_id));
        spans
    }

    /// Raw JSONL export: one span per line in `(trace, span)` order,
    /// wall attributes and real timestamps included.
    pub fn export_jsonl(&self) -> String {
        self.render(false)
    }

    /// Normalized JSONL export: `(trace, span)` order, timestamps
    /// zeroed, wall attributes dropped — byte-identical across replays
    /// of the same workload at any shard count.
    pub fn export_normalized_jsonl(&self) -> String {
        self.render(true)
    }

    fn render(&self, normalized: bool) -> String {
        let mut out = String::new();
        for span in self.spans() {
            out.push_str(&span.render(normalized));
            out.push('\n');
        }
        out
    }
}

/// Builds one request's span tree: spans open and close locally (no
/// shared state touched), then [`TraceBuilder::finish`] publishes the
/// whole tree to the tracer's ring in one pass. Span ids are assigned
/// in open order, so the tree shape is deterministic whenever the
/// open/close sequence is.
#[derive(Debug)]
pub struct TraceBuilder {
    trace_id: u64,
    origin: Instant,
    spans: Vec<SpanRecord>,
}

impl TraceBuilder {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    /// The trace id this builder records under.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Opens a span under `parent` (`None` = the root) and returns its
    /// id. The span's start time is now; it stays open until
    /// [`TraceBuilder::close`] (or `finish`, which closes stragglers).
    pub fn open(&mut self, parent: Option<u32>, name: &str) -> u32 {
        let id = self.spans.len() as u32;
        let now = self.now_ns();
        self.spans.push(SpanRecord {
            trace_id: self.trace_id,
            span_id: id,
            parent,
            name: name.to_string(),
            attrs: Vec::new(),
            wall: Vec::new(),
            start_ns: now,
            end_ns: 0,
        });
        id
    }

    /// Attaches a **deterministic** attribute (kept by normalization).
    pub fn attr(&mut self, span: u32, key: &str, value: &str) {
        if let Some(s) = self.spans.get_mut(span as usize) {
            s.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Attaches a **wall** attribute (dropped by normalization).
    pub fn wall_attr(&mut self, span: u32, key: &str, value: &str) {
        if let Some(s) = self.spans.get_mut(span as usize) {
            s.wall.push((key.to_string(), value.to_string()));
        }
    }

    /// Closes a span at the current time.
    pub fn close(&mut self, span: u32) {
        let now = self.now_ns();
        if let Some(s) = self.spans.get_mut(span as usize) {
            if s.end_ns == 0 {
                s.end_ns = now;
            }
        }
    }

    /// Closes any still-open spans and publishes the tree to `tracer`.
    pub fn finish(mut self, tracer: &Tracer) {
        let now = self.now_ns();
        for s in &mut self.spans {
            if s.end_ns == 0 {
                s.end_ns = now.max(s.start_ns);
            }
        }
        for s in self.spans {
            tracer.record(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tree(tracer: &Tracer, trace_id: u64) {
        let mut tb = tracer.begin(trace_id);
        let root = tb.open(None, "request");
        tb.attr(root, "op", "analyze");
        let q = tb.open(Some(root), "queue");
        tb.wall_attr(q, "wait_us", "17");
        tb.close(q);
        tb.close(root);
        tb.finish(tracer);
    }

    #[test]
    fn spans_sort_by_trace_then_id() {
        let tracer = Tracer::with_capacity(64);
        demo_tree(&tracer, 2);
        demo_tree(&tracer, 0);
        let spans = tracer.spans();
        let keys: Vec<(u64, u32)> = spans.iter().map(|s| (s.trace_id, s.span_id)).collect();
        assert_eq!(keys, [(0, 0), (0, 1), (2, 0), (2, 1)]);
        assert_eq!(tracer.recorded(), 4);
        assert_eq!(tracer.dropped(), 0);
    }

    #[test]
    fn normalized_export_drops_wall_facts_and_zeroes_time() {
        let tracer = Tracer::with_capacity(8);
        demo_tree(&tracer, 1);
        let norm = tracer.export_normalized_jsonl();
        assert_eq!(
            norm,
            "{\"trace\":1,\"span\":0,\"parent\":null,\"name\":\"request\",\
             \"attrs\":{\"op\":\"analyze\"},\"start\":0,\"end\":0}\n\
             {\"trace\":1,\"span\":1,\"parent\":0,\"name\":\"queue\",\
             \"attrs\":{},\"start\":0,\"end\":0}\n"
        );
        let raw = tracer.export_jsonl();
        assert!(raw.contains("\"wall\":{\"wait_us\":\"17\"}"));
    }

    #[test]
    fn children_close_within_parents_and_finish_closes_stragglers() {
        let tracer = Tracer::with_capacity(8);
        let mut tb = tracer.begin(9);
        let root = tb.open(None, "request");
        let child = tb.open(Some(root), "fetch");
        tb.close(child);
        tb.finish(&tracer); // root left open on purpose
        let spans = tracer.spans();
        let root_span = &spans[0];
        let child_span = &spans[1];
        assert!(root_span.end_ns >= root_span.start_ns);
        assert!(child_span.start_ns >= root_span.start_ns);
        assert!(child_span.end_ns <= root_span.end_ns);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let tracer = Tracer::with_capacity(2);
        for i in 0..5u64 {
            let mut tb = tracer.begin(i);
            let root = tb.open(None, "request");
            tb.close(root);
            tb.finish(&tracer);
        }
        assert_eq!(tracer.recorded(), 5);
        assert_eq!(tracer.dropped(), 3);
        assert_eq!(tracer.spans().len(), 2);
    }
}
