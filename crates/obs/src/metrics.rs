//! The metrics half of the observability substrate: a registry of
//! atomic counters, gauges, and log2-bucketed histograms with
//! deterministic-ordered snapshot renderers.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones around atomics — register once, clone freely, update from any
//! thread without locking. A [`RegistrySnapshot`] is a point-in-time
//! copy whose entries are **sorted by metric name**, so the JSON and
//! Prometheus-style renderings are byte-stable for equal values no
//! matter the registration or update order.
//!
//! Histograms use base-2 buckets: bucket `k > 0` holds values in
//! `[2^(k-1), 2^k)` and bucket `0` holds zero, so recording is one
//! `leading_zeros` plus one atomic add, and p50/p90/p99 are derivable
//! from the bucket counts (as the bucket's inclusive upper bound —
//! machine-independent *bucket* positions, which is what the committed
//! benchmark baselines band).

use crate::escape_json;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one zero bucket plus one per power of
/// two up to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing atomic counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge: a value that can move both ways (resident bytes,
/// in-flight requests) or track a running maximum (peaks).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds `n` and returns the updated value — lets a depth gauge feed
    /// its running-peak companion without a read-modify race.
    pub fn add_fetch(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Subtracts `n` (debug-asserts it never goes negative).
    pub fn sub(&self, n: u64) {
        let prev = self.0.fetch_sub(n, Ordering::Relaxed);
        debug_assert!(prev >= n, "gauge went negative");
    }

    /// Raises the value to `v` if `v` is larger (running maximum).
    pub fn set_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` samples (latencies in ns/µs,
/// byte sizes, queue depths — any nonnegative magnitude).
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramCell {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

/// The bucket index a value lands in: `0` for zero, otherwise
/// `64 - leading_zeros` (bucket `k` spans `[2^(k-1), 2^k)`).
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `k`.
pub fn bucket_upper_bound(k: usize) -> u64 {
    if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, value: u64) {
        self.0.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.0.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.0.count.load(Ordering::Relaxed),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A copied histogram state: bucket counts plus exact count and sum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The exact arithmetic mean (`0.0` when empty). Means are exact —
    /// `sum` and `count` are carried alongside the buckets — so
    /// mean-based checks lose nothing to bucketing.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket index the `q`-quantile (`q` in `[0, 1]`) falls in,
    /// by nearest rank over the bucket counts; `0` when empty.
    pub fn quantile_bucket(&self, q: f64) -> usize {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return k;
            }
        }
        HISTOGRAM_BUCKETS - 1
    }

    /// The inclusive upper bound of the `q`-quantile's bucket — the
    /// histogram's answer to "p99 ≤ ?" in the recorded unit.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        bucket_upper_bound(self.quantile_bucket(q))
    }

    /// Merges another snapshot into this one (bucketwise sums).
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named registry of metrics. Registration is idempotent: asking for
/// an existing name returns a handle to the same underlying atomic, so
/// independent components can share a metric by agreeing on its name.
///
/// Names must match `[a-z0-9_]+` — the renderers emit them unquoted in
/// the Prometheus form and unescaped in JSON.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(&self, name: &str, fresh: Metric) -> Metric {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut metrics = self.metrics.lock().expect("metrics registry lock");
        metrics.entry(name.to_string()).or_insert(fresh).clone()
    }

    /// Registers (or retrieves) a counter.
    ///
    /// # Panics
    /// If `name` is invalid or already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, Metric::Counter(Counter::default())) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Registers (or retrieves) a gauge.
    ///
    /// # Panics
    /// If `name` is invalid or already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, Metric::Gauge(Gauge::default())) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Registers (or retrieves) a histogram.
    ///
    /// # Panics
    /// If `name` is invalid or already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, Metric::Histogram(Histogram::default())) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().expect("metrics registry lock");
        RegistrySnapshot {
            entries: metrics
                .iter()
                .map(|(name, m)| {
                    let value = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One metric's copied value inside a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's full distribution (boxed: the bucket array is large
    /// next to the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time copy of a registry, sorted by metric name. Snapshots
/// from different registries (per-shard services) can be folded together
/// with [`RegistrySnapshot::absorb`] to form an aggregate view — the
/// single render path both the wire `metrics` op and the stderr stat
/// dumps go through.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RegistrySnapshot {
    entries: Vec<(String, MetricValue)>,
}

impl RegistrySnapshot {
    /// The named metric's value, if present.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// All `(name, value)` entries in name order.
    pub fn entries(&self) -> &[(String, MetricValue)] {
        &self.entries
    }

    /// A counter or gauge read as a plain number (`0` when absent).
    pub fn value(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) | Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Folds another snapshot in: counters and gauges add, histograms
    /// merge bucketwise, names only in `other` are copied over. Gauges
    /// add (rather than take either side) so per-shard resident bytes
    /// and peaks aggregate the same way the legacy `absorb` on the
    /// stats structs did.
    pub fn absorb(&mut self, other: &RegistrySnapshot) {
        for (name, theirs) in &other.entries {
            match self.entries.binary_search_by(|(n, _)| n.cmp(name)) {
                Ok(i) => match (&mut self.entries[i].1, theirs) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.absorb(b),
                    _ => {}
                },
                Err(i) => self.entries.insert(i, (name.clone(), theirs.clone())),
            }
        }
    }

    /// Renders the snapshot as one deterministic JSON object: metric
    /// names in sorted order, histograms as
    /// `{"type":"histogram","count":..,"sum":..,"p50":..,"p90":..,
    /// "p99":..,"buckets":[[k,n],..]}` with only nonzero buckets listed.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(name));
            out.push_str("\":");
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{{\"type\":\"counter\",\"value\":{v}}}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{{\"type\":\"gauge\",\"value\":{v}}}"));
                }
                MetricValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| **n > 0)
                        .map(|(k, n)| format!("[{k},{n}]"))
                        .collect();
                    out.push_str(&format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
                        h.count,
                        h.sum,
                        h.quantile_upper(0.50),
                        h.quantile_upper(0.90),
                        h.quantile_upper(0.99),
                        buckets.join(",")
                    ));
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition style:
    /// `# TYPE` lines, plain `name value` samples, and histograms as
    /// cumulative `name_bucket{le="..."}` series plus `_sum`/`_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (k, n) in h.buckets.iter().enumerate() {
                        if *n == 0 {
                            continue;
                        }
                        cum += n;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            bucket_upper_bound(k)
                        ));
                    }
                    out.push_str(&format!(
                        "{name}_bucket{{le=\"+Inf\"}} {}\n{name}_sum {}\n{name}_count {}\n",
                        h.count, h.sum, h.count
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lies within its bucket's bounds.
        for v in [0u64, 1, 2, 7, 100, 4096, u64::MAX / 2, u64::MAX] {
            let k = bucket_of(v);
            assert!(v <= bucket_upper_bound(k));
            if k > 0 {
                assert!(v > bucket_upper_bound(k - 1));
            }
        }
    }

    #[test]
    fn histogram_count_sum_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 5, 5, 900, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1935);
        assert_eq!(s.buckets.iter().sum::<u64>(), 6, "no sample lost");
        assert!((s.mean() - 322.5).abs() < 1e-9);
        assert!(s.quantile_bucket(0.5) <= s.quantile_bucket(0.9));
        assert!(s.quantile_bucket(0.9) <= s.quantile_bucket(0.99));
        assert_eq!(s.quantile_upper(1.0), bucket_upper_bound(11));
        assert_eq!(HistogramSnapshot::default().quantile_upper(0.99), 0);
    }

    #[test]
    fn registry_handles_share_state_and_snapshots_sort() {
        let reg = MetricsRegistry::new();
        let c1 = reg.counter("zeta_total");
        let c2 = reg.counter("zeta_total");
        c1.inc();
        c2.add(2);
        reg.gauge("alpha_bytes").set(7);
        reg.histogram("mid_ns").record(3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha_bytes", "mid_ns", "zeta_total"]);
        assert_eq!(snap.value("zeta_total"), 3);
        assert_eq!(snap.value("alpha_bytes"), 7);
        assert_eq!(snap.histogram("mid_ns").unwrap().count, 1);
    }

    #[test]
    fn absorb_folds_by_name() {
        let a = MetricsRegistry::new();
        a.counter("x_total").add(2);
        a.histogram("h_ns").record(10);
        let b = MetricsRegistry::new();
        b.counter("x_total").add(3);
        b.counter("only_b_total").inc();
        b.histogram("h_ns").record(1000);
        let mut agg = a.snapshot();
        agg.absorb(&b.snapshot());
        assert_eq!(agg.value("x_total"), 5);
        assert_eq!(agg.value("only_b_total"), 1);
        let h = agg.histogram("h_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1010);
    }

    #[test]
    fn renderers_are_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("b_total").add(4);
        reg.gauge("a_bytes").set(9);
        reg.histogram("c_ns").record(5);
        let one = reg.snapshot().render_json();
        let two = reg.snapshot().render_json();
        assert_eq!(one, two);
        assert!(one.starts_with("{\"a_bytes\":{\"type\":\"gauge\",\"value\":9}"));
        assert!(one.contains("\"b_total\":{\"type\":\"counter\",\"value\":4}"));
        assert!(one.contains("\"buckets\":[[3,1]]"));
        let prom = reg.snapshot().render_prometheus();
        assert!(prom.contains("# TYPE b_total counter\nb_total 4\n"));
        assert!(prom.contains("c_ns_bucket{le=\"7\"} 1\n"));
        assert!(prom.contains("c_ns_sum 5\nc_ns_count 1\n"));
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("twice");
        reg.gauge("twice");
    }
}
