//! Statements, values, and expressions — the Shimple-style typed IR.
//!
//! The statement vocabulary deliberately mirrors what the paper's analyses
//! consume: `DefinitionStmt` (identity + assign), `InvokeStmt`, and
//! `ReturnStmt` are the three tracked statement kinds (§IV-B), while the
//! expression kinds match the six the forward analysis models (§V-B):
//! `BinopExpr`, `CastExpr`, `InvokeExpr`, `NewExpr`, `NewArrayExpr`, and
//! `PhiExpr`.

use crate::types::{ClassName, FieldSig, MethodSig, Type};
use std::fmt;

/// A numbered local variable (register) inside one method body.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LocalId(pub u32);

impl fmt::Display for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

impl fmt::Debug for LocalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "$r{}", self.0)
    }
}

/// A compile-time constant.
#[derive(Clone, PartialEq, Debug)]
pub enum Const {
    /// Any integral constant (boolean/byte/short/char/int/long).
    Int(i64),
    /// A floating constant.
    Float(f64),
    /// A string literal.
    Str(String),
    /// A `const-class` literal.
    Class(ClassName),
    /// The `null` reference.
    Null,
}

impl Const {
    /// A string constant.
    pub fn str(s: impl Into<String>) -> Self {
        Const::Str(s.into())
    }
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(v) => write!(f, "{v}"),
            Const::Float(v) => write!(f, "{v}"),
            Const::Str(s) => write!(f, "\"{s}\""),
            Const::Class(c) => write!(f, "class {c}"),
            Const::Null => write!(f, "null"),
        }
    }
}

/// An operand: either a local or an immediate constant.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// A local variable read.
    Local(LocalId),
    /// An immediate constant.
    Const(Const),
}

impl Value {
    /// The local, if this value is one.
    pub fn as_local(&self) -> Option<LocalId> {
        match self {
            Value::Local(l) => Some(*l),
            Value::Const(_) => None,
        }
    }

    /// Shorthand for an integer constant value.
    pub fn int(v: i64) -> Value {
        Value::Const(Const::Int(v))
    }

    /// Shorthand for a string constant value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Const(Const::str(s))
    }
}

impl From<LocalId> for Value {
    fn from(l: LocalId) -> Self {
        Value::Local(l)
    }
}

impl From<Const> for Value {
    fn from(c: Const) -> Self {
        Value::Const(c)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Local(l) => write!(f, "{l}"),
            Value::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A storage location that can appear on the left of an assignment, or be
/// read through [`Rvalue::Read`].
#[derive(Clone, PartialEq, Debug)]
#[allow(missing_docs)]
pub enum Place {
    /// A local variable.
    Local(LocalId),
    /// `base.<C: T f>` — an instance field of the object in `base`.
    InstanceField { base: LocalId, field: FieldSig },
    /// `<C: T f>` — a static field.
    StaticField(FieldSig),
    /// `base[index]` — an array element.
    ArrayElem { base: LocalId, index: Value },
}

impl Place {
    /// The base local the place dereferences, if any.
    pub fn base_local(&self) -> Option<LocalId> {
        match self {
            Place::Local(l) => Some(*l),
            Place::InstanceField { base, .. } | Place::ArrayElem { base, .. } => Some(*base),
            Place::StaticField(_) => None,
        }
    }
}

impl fmt::Display for Place {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Place::Local(l) => write!(f, "{l}"),
            Place::InstanceField { base, field } => write!(f, "{base}.{field}"),
            Place::StaticField(field) => write!(f, "{field}"),
            Place::ArrayElem { base, index } => write!(f, "{base}[{index}]"),
        }
    }
}

/// Binary operators handled by the forward constant propagation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Ushr,
    /// Comparison producing an int (used by `cmp`/`cmpl`/`cmpg`).
    Cmp,
}

impl BinOp {
    /// The Jimple operator token.
    pub fn token(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Ushr => ">>>",
            BinOp::Cmp => "cmp",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Conditional operators for [`Stmt::If`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CondOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl fmt::Display for CondOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CondOp::Eq => "==",
            CondOp::Ne => "!=",
            CondOp::Lt => "<",
            CondOp::Le => "<=",
            CondOp::Gt => ">",
            CondOp::Ge => ">=",
        })
    }
}

/// The dispatch kind of an invocation, mirroring the DEX `invoke-*` family.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InvokeKind {
    /// `invoke-virtual` — virtual dispatch on the receiver type.
    Virtual,
    /// `invoke-direct` / `specialinvoke` — constructors and private methods.
    Special,
    /// `invoke-static`.
    Static,
    /// `invoke-interface`.
    Interface,
    /// `invoke-super`.
    Super,
}

impl InvokeKind {
    /// The Jimple keyword (`virtualinvoke` etc.).
    pub fn jimple_keyword(self) -> &'static str {
        match self {
            InvokeKind::Virtual => "virtualinvoke",
            InvokeKind::Special => "specialinvoke",
            InvokeKind::Static => "staticinvoke",
            InvokeKind::Interface => "interfaceinvoke",
            InvokeKind::Super => "superinvoke",
        }
    }

    /// The dexdump mnemonic (`invoke-virtual` etc.).
    pub fn dex_mnemonic(self) -> &'static str {
        match self {
            InvokeKind::Virtual => "invoke-virtual",
            InvokeKind::Special => "invoke-direct",
            InvokeKind::Static => "invoke-static",
            InvokeKind::Interface => "invoke-interface",
            InvokeKind::Super => "invoke-super",
        }
    }
}

/// A method invocation expression.
#[derive(Clone, PartialEq, Debug)]
pub struct InvokeExpr {
    /// The dispatch kind.
    pub kind: InvokeKind,
    /// The *declared* callee signature as it appears in the bytecode.
    pub callee: MethodSig,
    /// The receiver for instance invokes.
    pub base: Option<LocalId>,
    /// Argument values (excluding the receiver).
    pub args: Vec<Value>,
}

impl InvokeExpr {
    /// A static call.
    pub fn call_static(callee: MethodSig, args: Vec<Value>) -> Self {
        InvokeExpr {
            kind: InvokeKind::Static,
            callee,
            base: None,
            args,
        }
    }

    /// A virtual call on `base`.
    pub fn call_virtual(callee: MethodSig, base: LocalId, args: Vec<Value>) -> Self {
        InvokeExpr {
            kind: InvokeKind::Virtual,
            callee,
            base: Some(base),
            args,
        }
    }

    /// A special (constructor/private) call on `base`.
    pub fn call_special(callee: MethodSig, base: LocalId, args: Vec<Value>) -> Self {
        InvokeExpr {
            kind: InvokeKind::Special,
            callee,
            base: Some(base),
            args,
        }
    }

    /// An interface call on `base`.
    pub fn call_interface(callee: MethodSig, base: LocalId, args: Vec<Value>) -> Self {
        InvokeExpr {
            kind: InvokeKind::Interface,
            callee,
            base: Some(base),
            args,
        }
    }

    /// All operand locals: receiver plus argument locals.
    pub fn operand_locals(&self) -> Vec<LocalId> {
        let mut out = Vec::new();
        if let Some(b) = self.base {
            out.push(b);
        }
        out.extend(self.args.iter().filter_map(Value::as_local));
        out
    }
}

impl fmt::Display for InvokeExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args = self
            .args
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        match self.base {
            Some(b) => write!(
                f,
                "{} {}.{}({})",
                self.kind.jimple_keyword(),
                b,
                self.callee,
                args
            ),
            None => write!(
                f,
                "{} {}({})",
                self.kind.jimple_keyword(),
                self.callee,
                args
            ),
        }
    }
}

/// The right-hand side of an assignment.
#[derive(Clone, PartialEq, Debug)]
pub enum Rvalue {
    /// A plain copy of a value.
    Use(Value),
    /// A read from a field or array place.
    Read(Place),
    /// `a <op> b`.
    Binop(BinOp, Value, Value),
    /// `(T) v`.
    Cast(Type, Value),
    /// `v instanceof C`.
    InstanceOf(ClassName, Value),
    /// `new C` (allocation only; `<init>` is a separate invoke).
    New(ClassName),
    /// `new T[len]`.
    NewArray(Type, Value),
    /// An invocation whose result is assigned.
    Invoke(InvokeExpr),
    /// SSA φ-node merging several locals.
    Phi(Vec<LocalId>),
    /// `lengthof v`.
    Length(Value),
}

impl Rvalue {
    /// The invoke expression, if this rvalue is one.
    pub fn as_invoke(&self) -> Option<&InvokeExpr> {
        match self {
            Rvalue::Invoke(ie) => Some(ie),
            _ => None,
        }
    }

    /// Locals read by this rvalue.
    pub fn operand_locals(&self) -> Vec<LocalId> {
        fn val(v: &Value, out: &mut Vec<LocalId>) {
            if let Some(l) = v.as_local() {
                out.push(l);
            }
        }
        let mut out = Vec::new();
        match self {
            Rvalue::Use(v) | Rvalue::Cast(_, v) | Rvalue::InstanceOf(_, v) | Rvalue::Length(v) => {
                val(v, &mut out)
            }
            Rvalue::Read(p) => {
                if let Some(b) = p.base_local() {
                    out.push(b);
                }
                if let Place::ArrayElem { index, .. } = p {
                    val(index, &mut out);
                }
            }
            Rvalue::Binop(_, a, b) => {
                val(a, &mut out);
                val(b, &mut out);
            }
            Rvalue::New(_) => {}
            Rvalue::NewArray(_, len) => val(len, &mut out),
            Rvalue::Invoke(ie) => out.extend(ie.operand_locals()),
            Rvalue::Phi(ls) => out.extend(ls.iter().copied()),
        }
        out
    }
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(v) => write!(f, "{v}"),
            Rvalue::Read(p) => write!(f, "{p}"),
            Rvalue::Binop(op, a, b) => write!(f, "{a} {op} {b}"),
            Rvalue::Cast(t, v) => write!(f, "({t}) {v}"),
            Rvalue::InstanceOf(c, v) => write!(f, "{v} instanceof {c}"),
            Rvalue::New(c) => write!(f, "new {c}"),
            Rvalue::NewArray(t, l) => write!(f, "newarray ({t})[{l}]"),
            Rvalue::Invoke(ie) => write!(f, "{ie}"),
            Rvalue::Phi(ls) => write!(
                f,
                "Phi({})",
                ls.iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            Rvalue::Length(v) => write!(f, "lengthof {v}"),
        }
    }
}

/// The source of an identity statement (`r0 := @this`, `r1 := @parameter0`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum IdentityKind {
    /// The implicit receiver, with its declared type.
    This(ClassName),
    /// The i-th parameter, with its declared type.
    Param(usize, Type),
    /// The caught exception at a handler entry.
    CaughtException,
}

impl fmt::Display for IdentityKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IdentityKind::This(c) => write!(f, "@this: {c}"),
            IdentityKind::Param(i, t) => write!(f, "@parameter{i}: {t}"),
            IdentityKind::CaughtException => write!(f, "@caughtexception"),
        }
    }
}

/// One IR statement.
#[derive(Clone, PartialEq, Debug)]
#[allow(missing_docs)]
pub enum Stmt {
    /// `local := @this` / `local := @parameterN` — a `DefinitionStmt`
    /// binding an implicit input.
    Identity { local: LocalId, kind: IdentityKind },
    /// `place = rvalue` — an `AssignStmt` (also a `DefinitionStmt`).
    Assign { place: Place, rvalue: Rvalue },
    /// A bare `InvokeStmt` whose result (if any) is discarded.
    Invoke(InvokeExpr),
    /// `return` / `return v`.
    Return(Option<Value>),
    /// Conditional branch to the statement at index `target`.
    If {
        op: CondOp,
        a: Value,
        b: Value,
        target: usize,
    },
    /// Unconditional branch to the statement at index `target`.
    Goto(usize),
    /// `throw v`.
    Throw(Value),
    /// No-op placeholder (also used as a branch landing pad).
    Nop,
}

impl Stmt {
    /// The invoke expression contained in this statement, whether a bare
    /// `InvokeStmt` or an assigned `Rvalue::Invoke`.
    pub fn invoke_expr(&self) -> Option<&InvokeExpr> {
        match self {
            Stmt::Invoke(ie) => Some(ie),
            Stmt::Assign { rvalue, .. } => rvalue.as_invoke(),
            _ => None,
        }
    }

    /// Whether this is a `DefinitionStmt` (identity or assignment) — one of
    /// the three statement kinds the forward object taint tracks (§IV-B).
    pub fn is_definition(&self) -> bool {
        matches!(self, Stmt::Identity { .. } | Stmt::Assign { .. })
    }

    /// The place defined by this statement, if any.
    pub fn defined_place(&self) -> Option<Place> {
        match self {
            Stmt::Identity { local, .. } => Some(Place::Local(*local)),
            Stmt::Assign { place, .. } => Some(place.clone()),
            _ => None,
        }
    }

    /// Branch targets for control-flow construction.
    pub fn branch_targets(&self) -> Vec<usize> {
        match self {
            Stmt::If { target, .. } => vec![*target],
            Stmt::Goto(t) => vec![*t],
            _ => Vec::new(),
        }
    }

    /// Whether control never falls through to the next statement.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Stmt::Return(_) | Stmt::Goto(_) | Stmt::Throw(_))
    }
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Identity { local, kind } => write!(f, "{local} := {kind}"),
            Stmt::Assign { place, rvalue } => write!(f, "{place} = {rvalue}"),
            Stmt::Invoke(ie) => write!(f, "{ie}"),
            Stmt::Return(None) => write!(f, "return"),
            Stmt::Return(Some(v)) => write!(f, "return {v}"),
            Stmt::If { op, a, b, target } => write!(f, "if {a} {op} {b} goto @{target}"),
            Stmt::Goto(t) => write!(f, "goto @{t}"),
            Stmt::Throw(v) => write!(f, "throw {v}"),
            Stmt::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str) -> MethodSig {
        MethodSig::new("com.a.B", name, vec![], Type::Void)
    }

    #[test]
    fn invoke_expr_display() {
        let ie = InvokeExpr::call_virtual(sig("start"), LocalId(13), vec![]);
        assert_eq!(
            ie.to_string(),
            "virtualinvoke $r13.<com.a.B: void start()>()"
        );
    }

    #[test]
    fn stmt_invoke_extraction() {
        let ie = InvokeExpr::call_static(sig("m"), vec![Value::int(1)]);
        let bare = Stmt::Invoke(ie.clone());
        let assigned = Stmt::Assign {
            place: Place::Local(LocalId(0)),
            rvalue: Rvalue::Invoke(ie.clone()),
        };
        assert_eq!(bare.invoke_expr(), Some(&ie));
        assert_eq!(assigned.invoke_expr(), Some(&ie));
        assert_eq!(Stmt::Return(None).invoke_expr(), None);
    }

    #[test]
    fn operand_locals() {
        let rv = Rvalue::Binop(BinOp::Add, Value::Local(LocalId(1)), Value::int(2));
        assert_eq!(rv.operand_locals(), vec![LocalId(1)]);
        let read = Rvalue::Read(Place::ArrayElem {
            base: LocalId(3),
            index: Value::Local(LocalId(4)),
        });
        assert_eq!(read.operand_locals(), vec![LocalId(3), LocalId(4)]);
        let ie = InvokeExpr::call_virtual(sig("m"), LocalId(5), vec![Value::Local(LocalId(6))]);
        assert_eq!(
            Rvalue::Invoke(ie).operand_locals(),
            vec![LocalId(5), LocalId(6)]
        );
    }

    #[test]
    fn definition_statements() {
        let id = Stmt::Identity {
            local: LocalId(0),
            kind: IdentityKind::This(ClassName::new("com.a.B")),
        };
        assert!(id.is_definition());
        assert_eq!(id.defined_place(), Some(Place::Local(LocalId(0))));
        assert_eq!(id.to_string(), "$r0 := @this: com.a.B");
        assert!(!Stmt::Return(None).is_definition());
    }

    #[test]
    fn terminators_and_targets() {
        assert!(Stmt::Return(None).is_terminator());
        assert!(Stmt::Goto(3).is_terminator());
        assert_eq!(Stmt::Goto(3).branch_targets(), vec![3]);
        let iff = Stmt::If {
            op: CondOp::Eq,
            a: Value::int(0),
            b: Value::int(0),
            target: 7,
        };
        assert!(!iff.is_terminator());
        assert_eq!(iff.branch_targets(), vec![7]);
    }
}
