//! Statement-level control-flow graph over a [`MethodBody`].
//!
//! The whole-app baseline's worklist dataflow iterates over this graph;
//! BackDroid itself mostly walks statements linearly but uses successor
//! information when slicing across branches.

use crate::body::MethodBody;
use crate::stmt::Stmt;

/// Successor/predecessor tables for one method body, indexed by statement.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of `body`.
    pub fn build(body: &MethodBody) -> Cfg {
        let n = body.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, stmt) in body.stmts().iter().enumerate() {
            let mut out = Vec::new();
            match stmt {
                Stmt::Return(_) | Stmt::Throw(_) => {}
                Stmt::Goto(t) => out.push(*t),
                Stmt::If { target, .. } => {
                    if i + 1 < n {
                        out.push(i + 1);
                    }
                    out.push(*target);
                }
                _ => {
                    if i + 1 < n {
                        out.push(i + 1);
                    }
                }
            }
            out.retain(|t| *t < n);
            out.dedup();
            for &t in &out {
                preds[t].push(i);
            }
            succs[i] = out;
        }
        Cfg { succs, preds }
    }

    /// Successor statement indices of `idx`.
    pub fn succs(&self, idx: usize) -> &[usize] {
        &self.succs[idx]
    }

    /// Predecessor statement indices of `idx`.
    pub fn preds(&self, idx: usize) -> &[usize] {
        &self.preds[idx]
    }

    /// Number of statements covered.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the body was empty.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Statement indices reachable from index 0.
    pub fn reachable_from_entry(&self) -> Vec<bool> {
        let mut seen = vec![false; self.succs.len()];
        if self.succs.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if seen[i] {
                continue;
            }
            seen[i] = true;
            stack.extend(self.succs[i].iter().copied().filter(|&s| !seen[s]));
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{CondOp, Stmt, Value};

    fn body_of(stmts: Vec<Stmt>) -> MethodBody {
        let mut b = MethodBody::new();
        for s in stmts {
            b.push(s);
        }
        b
    }

    #[test]
    fn straight_line() {
        let b = body_of(vec![Stmt::Nop, Stmt::Nop, Stmt::Return(None)]);
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.succs(0), &[1]);
        assert_eq!(cfg.succs(1), &[2]);
        assert!(cfg.succs(2).is_empty());
        assert_eq!(cfg.preds(1), &[0]);
    }

    #[test]
    fn branch_has_two_successors() {
        let b = body_of(vec![
            Stmt::If {
                op: CondOp::Eq,
                a: Value::int(0),
                b: Value::int(0),
                target: 3,
            },
            Stmt::Nop,
            Stmt::Return(None),
            Stmt::Nop,
            Stmt::Return(None),
        ]);
        let cfg = Cfg::build(&b);
        assert_eq!(cfg.succs(0), &[1, 3]);
        assert_eq!(cfg.preds(3), &[0]);
        let reach = cfg.reachable_from_entry();
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn goto_skips_dead_code() {
        let b = body_of(vec![
            Stmt::Goto(2),
            Stmt::Nop, // dead
            Stmt::Return(None),
        ]);
        let cfg = Cfg::build(&b);
        let reach = cfg.reachable_from_entry();
        assert_eq!(reach, vec![true, false, true]);
    }

    #[test]
    fn empty_body() {
        let cfg = Cfg::build(&MethodBody::new());
        assert!(cfg.is_empty());
        assert!(cfg.reachable_from_entry().is_empty());
    }
}
