//! Fluent builders for classes and method bodies.
//!
//! The workload generators and tests construct thousands of methods; these
//! builders keep that construction readable while maintaining the IR
//! invariants (identity statements first, fresh locals, patched branch
//! targets).

use crate::body::{Class, FieldDef, Method, MethodBody};
use crate::stmt::{
    BinOp, CondOp, Const, IdentityKind, InvokeExpr, LocalId, Place, Rvalue, Stmt, Value,
};
use crate::types::{ClassName, FieldSig, MethodSig, Modifiers, Type};

/// A forward-referencable branch label.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(usize);

/// Builds one [`Class`].
#[derive(Debug)]
pub struct ClassBuilder {
    class: Class,
}

impl ClassBuilder {
    /// Starts a public class.
    pub fn new(name: impl Into<ClassName>) -> Self {
        ClassBuilder {
            class: Class::new(name.into(), Modifiers::public()),
        }
    }

    /// Starts a public interface.
    pub fn new_interface(name: impl Into<ClassName>) -> Self {
        ClassBuilder {
            class: Class::new(name.into(), Modifiers::public().with_interface()),
        }
    }

    /// Sets the superclass.
    pub fn extends(mut self, sup: impl Into<ClassName>) -> Self {
        self.class.set_superclass(sup.into());
        self
    }

    /// Adds an implemented interface.
    pub fn implements(mut self, iface: impl Into<ClassName>) -> Self {
        self.class.add_interface(iface.into());
        self
    }

    /// Adds a field.
    pub fn field(mut self, name: &str, ty: Type, modifiers: Modifiers) -> Self {
        let sig = FieldSig::new(self.class.name().clone(), name, ty);
        self.class.add_field(FieldDef::new(sig, modifiers));
        self
    }

    /// Adds a finished method.
    pub fn method(mut self, method: Method) -> Self {
        self.class.add_method(method);
        self
    }

    /// Adds an abstract method declaration.
    pub fn abstract_method(mut self, name: &str, params: Vec<Type>, ret: Type) -> Self {
        let sig = MethodSig::new(self.class.name().clone(), name, params, ret);
        self.class
            .add_method(Method::new_abstract(sig, Modifiers::public()));
        self
    }

    /// The field signature for `name`, for use while building methods.
    pub fn field_sig(&self, name: &str) -> Option<FieldSig> {
        self.class
            .fields()
            .iter()
            .find(|f| f.sig().name() == name)
            .map(|f| f.sig().clone())
    }

    /// The class name being built.
    pub fn name(&self) -> &ClassName {
        self.class.name()
    }

    /// Finishes the class.
    pub fn build(self) -> Class {
        self.class
    }
}

/// Builds one concrete [`Method`] body with automatic local allocation and
/// label patching.
#[derive(Debug)]
pub struct MethodBuilder {
    sig: MethodSig,
    modifiers: Modifiers,
    body: MethodBody,
    next_local: u32,
    /// (stmt index, label) pairs whose branch target must be patched.
    pending: Vec<(usize, Label)>,
    /// label -> resolved stmt index
    label_targets: Vec<Option<usize>>,
}

impl MethodBuilder {
    /// Starts a method. For instance methods an `@this` identity statement
    /// is emitted automatically; parameters get `@parameterN` identities.
    pub fn new(sig: MethodSig, modifiers: Modifiers) -> Self {
        let mut b = MethodBuilder {
            sig: sig.clone(),
            modifiers,
            body: MethodBody::new(),
            next_local: 0,
            pending: Vec::new(),
            label_targets: Vec::new(),
        };
        if !modifiers.is_static() && !sig.is_clinit() {
            let this = b.fresh(Type::Object(sig.class().clone()));
            b.body.push(Stmt::Identity {
                local: this,
                kind: IdentityKind::This(sig.class().clone()),
            });
        }
        for (i, p) in sig.params().iter().enumerate() {
            let l = b.fresh(p.clone());
            b.body.push(Stmt::Identity {
                local: l,
                kind: IdentityKind::Param(i, p.clone()),
            });
        }
        b
    }

    /// Convenience: starts a `public` instance method on `class`.
    pub fn public(class: &ClassName, name: &str, params: Vec<Type>, ret: Type) -> Self {
        Self::new(
            MethodSig::new(class.clone(), name, params, ret),
            Modifiers::public(),
        )
    }

    /// Convenience: starts a `public static` method on `class`.
    pub fn public_static(class: &ClassName, name: &str, params: Vec<Type>, ret: Type) -> Self {
        Self::new(
            MethodSig::new(class.clone(), name, params, ret),
            Modifiers::public_static(),
        )
    }

    /// Convenience: starts a `private` instance method on `class`.
    pub fn private(class: &ClassName, name: &str, params: Vec<Type>, ret: Type) -> Self {
        Self::new(
            MethodSig::new(class.clone(), name, params, ret),
            Modifiers::private(),
        )
    }

    /// Convenience: starts a constructor on `class`.
    pub fn constructor(class: &ClassName, params: Vec<Type>) -> Self {
        Self::new(
            MethodSig::new(class.clone(), "<init>", params, Type::Void),
            Modifiers::public(),
        )
    }

    /// Convenience: starts the static initializer of `class`.
    pub fn clinit(class: &ClassName) -> Self {
        Self::new(
            MethodSig::new(class.clone(), "<clinit>", vec![], Type::Void),
            Modifiers::public_static(),
        )
    }

    /// The signature under construction.
    pub fn sig(&self) -> &MethodSig {
        &self.sig
    }

    fn fresh(&mut self, ty: Type) -> LocalId {
        let id = LocalId(self.next_local);
        self.next_local += 1;
        self.body.declare_local(id, ty);
        id
    }

    /// Allocates a fresh typed local.
    pub fn local(&mut self, ty: Type) -> LocalId {
        self.fresh(ty)
    }

    /// The local bound to `@this` (local 0 for instance methods).
    ///
    /// # Panics
    /// Panics on static methods, which have no receiver.
    pub fn this(&self) -> LocalId {
        assert!(
            !self.modifiers.is_static() && !self.sig.is_clinit(),
            "static method has no this"
        );
        LocalId(0)
    }

    /// The local bound to `@parameterN`.
    pub fn param(&self, n: usize) -> LocalId {
        assert!(n < self.sig.params().len(), "parameter index out of range");
        let base = if self.modifiers.is_static() || self.sig.is_clinit() {
            0
        } else {
            1
        };
        LocalId((base + n) as u32)
    }

    /// Appends a raw statement.
    pub fn push(&mut self, stmt: Stmt) -> usize {
        self.body.push(stmt)
    }

    /// `local = constant`.
    pub fn assign_const(&mut self, c: Const) -> LocalId {
        let ty = match &c {
            Const::Int(_) => Type::Int,
            Const::Float(_) => Type::Double,
            Const::Str(_) => Type::string(),
            Const::Class(_) => Type::object("java.lang.Class"),
            Const::Null => Type::object("java.lang.Object"),
        };
        let l = self.fresh(ty);
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Use(Value::Const(c)),
        });
        l
    }

    /// `local = new C(); specialinvoke local.<init>(args)` — the standard
    /// allocation + constructor pair.
    pub fn new_object(
        &mut self,
        class: impl Into<ClassName>,
        ctor_params: Vec<Type>,
        args: Vec<Value>,
    ) -> LocalId {
        let class = class.into();
        let l = self.fresh(Type::Object(class.clone()));
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::New(class.clone()),
        });
        let ctor = MethodSig::new(class, "<init>", ctor_params, Type::Void);
        self.body
            .push(Stmt::Invoke(InvokeExpr::call_special(ctor, l, args)));
        l
    }

    /// Bare invoke statement.
    pub fn invoke(&mut self, ie: InvokeExpr) -> usize {
        self.body.push(Stmt::Invoke(ie))
    }

    /// `local = invoke(...)` with a fresh result local of type `ret`.
    pub fn invoke_assign(&mut self, ie: InvokeExpr) -> LocalId {
        let l = self.fresh(ie.callee.ret().clone());
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Invoke(ie),
        });
        l
    }

    /// `local = base.field`.
    pub fn read_instance_field(&mut self, base: LocalId, field: FieldSig) -> LocalId {
        let l = self.fresh(field.ty().clone());
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Read(Place::InstanceField { base, field }),
        });
        l
    }

    /// `base.field = value`.
    pub fn write_instance_field(&mut self, base: LocalId, field: FieldSig, value: Value) {
        self.body.push(Stmt::Assign {
            place: Place::InstanceField { base, field },
            rvalue: Rvalue::Use(value),
        });
    }

    /// `local = <static field>`.
    pub fn read_static_field(&mut self, field: FieldSig) -> LocalId {
        let l = self.fresh(field.ty().clone());
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Read(Place::StaticField(field)),
        });
        l
    }

    /// `<static field> = value`.
    pub fn write_static_field(&mut self, field: FieldSig, value: Value) {
        self.body.push(Stmt::Assign {
            place: Place::StaticField(field),
            rvalue: Rvalue::Use(value),
        });
    }

    /// `local = a <op> b`.
    pub fn binop(&mut self, op: BinOp, a: Value, b: Value, ty: Type) -> LocalId {
        let l = self.fresh(ty);
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Binop(op, a, b),
        });
        l
    }

    /// `local = (ty) v`.
    pub fn cast(&mut self, ty: Type, v: Value) -> LocalId {
        let l = self.fresh(ty.clone());
        self.body.push(Stmt::Assign {
            place: Place::Local(l),
            rvalue: Rvalue::Cast(ty, v),
        });
        l
    }

    /// `return;`
    pub fn ret_void(&mut self) {
        self.body.push(Stmt::Return(None));
    }

    /// `return v;`
    pub fn ret(&mut self, v: Value) {
        self.body.push(Stmt::Return(Some(v)));
    }

    /// Reserves a label for a forward branch.
    pub fn reserve_label(&mut self) -> Label {
        self.label_targets.push(None);
        Label(self.label_targets.len() - 1)
    }

    /// Places a reserved label at the *next* statement to be pushed. A
    /// `Nop` landing pad is emitted so the label always has a target.
    pub fn place_label(&mut self, label: Label) {
        let idx = self.body.push(Stmt::Nop);
        self.label_targets[label.0] = Some(idx);
    }

    /// Conditional branch to `label`.
    pub fn if_goto(&mut self, op: CondOp, a: Value, b: Value, label: Label) {
        let idx = self.body.push(Stmt::If {
            op,
            a,
            b,
            target: usize::MAX,
        });
        self.pending.push((idx, label));
    }

    /// Unconditional branch to `label`.
    pub fn goto(&mut self, label: Label) {
        let idx = self.body.push(Stmt::Goto(usize::MAX));
        self.pending.push((idx, label));
    }

    /// Finishes the method, patching all branch targets.
    ///
    /// # Panics
    /// Panics if a reserved label was never placed, or if the body does not
    /// end with a terminator (a trailing `return` is appended for `void`
    /// methods instead of panicking).
    pub fn build(mut self) -> Method {
        // Auto-terminate void methods for convenience.
        let needs_ret = self.body.stmts().last().is_none_or(|s| !s.is_terminator());
        if needs_ret {
            assert!(
                self.sig.ret() == &Type::Void,
                "non-void method {} must end with return",
                self.sig
            );
            self.body.push(Stmt::Return(None));
        }
        for (idx, label) in self.pending {
            let target = self.label_targets[label.0]
                .unwrap_or_else(|| panic!("label {label:?} never placed in {}", self.sig));
            match &mut self.body.stmts_mut()[idx] {
                Stmt::If { target: t, .. } | Stmt::Goto(t) => *t = target,
                other => unreachable!("pending patch on non-branch {other}"),
            }
        }
        Method::new(self.sig, self.modifiers, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_method_gets_this_and_params() {
        let class = ClassName::new("com.a.B");
        let b = MethodBuilder::public(&class, "m", vec![Type::Int, Type::string()], Type::Void);
        assert_eq!(b.this(), LocalId(0));
        assert_eq!(b.param(0), LocalId(1));
        assert_eq!(b.param(1), LocalId(2));
        let m = b.build();
        let stmts = m.body().unwrap().stmts();
        assert!(matches!(stmts[0], Stmt::Identity { .. }));
        assert!(matches!(stmts[1], Stmt::Identity { .. }));
        assert!(matches!(stmts.last().unwrap(), Stmt::Return(None)));
    }

    #[test]
    fn static_method_params_start_at_zero() {
        let class = ClassName::new("com.a.B");
        let b = MethodBuilder::public_static(&class, "m", vec![Type::Int], Type::Void);
        assert_eq!(b.param(0), LocalId(0));
    }

    #[test]
    #[should_panic(expected = "no this")]
    fn static_method_this_panics() {
        let class = ClassName::new("com.a.B");
        let b = MethodBuilder::public_static(&class, "m", vec![], Type::Void);
        let _ = b.this();
    }

    #[test]
    fn new_object_emits_alloc_and_init() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public_static(&class, "m", vec![], Type::Void);
        let l = b.new_object("com.a.Server", vec![Type::Int], vec![Value::int(8080)]);
        let m = b.build();
        let stmts = m.body().unwrap().stmts();
        assert!(matches!(
            &stmts[0],
            Stmt::Assign { rvalue: Rvalue::New(c), .. } if c.as_str() == "com.a.Server"
        ));
        let ie = stmts[1].invoke_expr().unwrap();
        assert!(ie.callee.is_init());
        assert_eq!(ie.base, Some(l));
    }

    #[test]
    fn labels_are_patched() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public_static(&class, "m", vec![Type::Int], Type::Int);
        let end = b.reserve_label();
        b.if_goto(CondOp::Eq, Value::Local(b.param(0)), Value::int(0), end);
        let x = b.assign_const(Const::Int(1));
        b.ret(Value::Local(x));
        b.place_label(end);
        b.ret(Value::int(0));
        let m = b.build();
        let stmts = m.body().unwrap().stmts();
        let Stmt::If { target, .. } = &stmts[1] else {
            panic!("expected if")
        };
        assert!(matches!(stmts[*target], Stmt::Nop));
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::public_static(&class, "m", vec![], Type::Void);
        let l = b.reserve_label();
        b.goto(l);
        let _ = b.build();
    }

    #[test]
    fn class_builder_assembles() {
        let class = ClassBuilder::new("com.a.Server")
            .extends("com.a.SuperServer")
            .implements("java.lang.Runnable")
            .field("port", Type::Int, Modifiers::private())
            .abstract_method("onReady", vec![], Type::Void)
            .build();
        assert_eq!(class.superclass().unwrap().as_str(), "com.a.SuperServer");
        assert_eq!(class.interfaces().len(), 1);
        assert_eq!(class.fields().len(), 1);
        assert_eq!(class.methods().len(), 1);
    }

    #[test]
    fn clinit_builder() {
        let class = ClassName::new("com.a.B");
        let mut b = MethodBuilder::clinit(&class);
        b.write_static_field(
            FieldSig::new(class.clone(), "PORT", Type::Int),
            Value::int(8089),
        );
        let m = b.build();
        assert!(m.sig().is_clinit());
        assert!(m.modifiers().is_static());
    }
}
