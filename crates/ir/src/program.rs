//! The whole-program class table with hierarchy and dispatch queries.
//!
//! Only *application* classes live here — Android/Java platform classes are
//! referenced by name but never defined, exactly as in a real DEX file.

use crate::body::{Class, Method};
use crate::types::{ClassName, MethodSig};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// An immutable-after-construction program: every class in the app's DEX.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    classes: BTreeMap<ClassName, Class>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class definition.
    ///
    /// # Panics
    /// Panics if a class with the same name was already added.
    pub fn add_class(&mut self, class: Class) {
        let prev = self.classes.insert(class.name().clone(), class);
        assert!(prev.is_none(), "duplicate class definition");
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &ClassName) -> Option<&Class> {
        self.classes.get(name)
    }

    /// Removes a class definition, returning it if present. Used by the
    /// version-delta path to apply `removed` entries of a delta manifest.
    pub fn remove_class(&mut self, name: &ClassName) -> Option<Class> {
        self.classes.remove(name)
    }

    /// Inserts or replaces a class definition, returning the previous
    /// definition if one existed. Unlike [`Program::add_class`] this does
    /// not panic on duplicates — delta application overwrites changed
    /// classes in place.
    pub fn replace_class(&mut self, class: Class) -> Option<Class> {
        self.classes.insert(class.name().clone(), class)
    }

    /// Whether the class is defined in the app (vs platform-only).
    pub fn defines(&self, name: &ClassName) -> bool {
        self.classes.contains_key(name)
    }

    /// All classes in deterministic (name) order.
    pub fn classes(&self) -> impl Iterator<Item = &Class> + '_ {
        self.classes.values()
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Total method count.
    pub fn method_count(&self) -> usize {
        self.classes.values().map(|c| c.methods().len()).sum()
    }

    /// Total statement count across all method bodies.
    pub fn stmt_count(&self) -> usize {
        self.classes.values().map(Class::stmt_count).sum()
    }

    /// Looks up a method by its exact declared signature.
    pub fn method(&self, sig: &MethodSig) -> Option<&Method> {
        self.classes.get(sig.class())?.find_method(sig)
    }

    /// All concrete (body-carrying) methods, in deterministic order.
    pub fn concrete_methods(&self) -> impl Iterator<Item = &Method> + '_ {
        self.classes
            .values()
            .flat_map(|c| c.methods().iter())
            .filter(|m| m.body().is_some())
    }

    /// The direct superclass chain of `name`, from the class upward,
    /// stopping at the first class not defined in the app (platform super
    /// classes are included by name as the final element).
    pub fn superclass_chain(&self, name: &ClassName) -> Vec<ClassName> {
        let mut chain = Vec::new();
        let mut cur = name.clone();
        let mut guard = 0;
        while let Some(c) = self.classes.get(&cur) {
            guard += 1;
            if guard > 1_000 {
                break; // defensive: malformed cyclic hierarchy
            }
            match c.superclass() {
                Some(s) => {
                    chain.push(s.clone());
                    cur = s.clone();
                }
                None => break,
            }
        }
        chain
    }

    /// Whether `sub` is `sup` or a (transitive) subclass/implementer of it.
    pub fn is_subtype_of(&self, sub: &ClassName, sup: &ClassName) -> bool {
        if sub == sup {
            return true;
        }
        let mut queue = VecDeque::from([sub.clone()]);
        let mut seen = BTreeSet::new();
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if &cur == sup {
                return true;
            }
            if let Some(c) = self.classes.get(&cur) {
                if let Some(s) = c.superclass() {
                    queue.push_back(s.clone());
                }
                for i in c.interfaces() {
                    queue.push_back(i.clone());
                }
            }
        }
        false
    }

    /// Direct subclasses of `name` among defined classes.
    pub fn direct_subclasses(&self, name: &ClassName) -> Vec<ClassName> {
        self.classes
            .values()
            .filter(|c| c.superclass() == Some(name))
            .map(|c| c.name().clone())
            .collect()
    }

    /// All transitive subclasses of `name` (excluding `name` itself).
    pub fn subclasses_transitive(&self, name: &ClassName) -> Vec<ClassName> {
        let mut out = Vec::new();
        let mut queue: VecDeque<ClassName> = VecDeque::from([name.clone()]);
        let mut seen = BTreeSet::new();
        while let Some(cur) = queue.pop_front() {
            for sub in self.direct_subclasses(&cur) {
                if seen.insert(sub.clone()) {
                    out.push(sub.clone());
                    queue.push_back(sub);
                }
            }
        }
        out
    }

    /// Defined classes that (transitively) implement interface `iface`,
    /// including via superclasses and super-interfaces.
    pub fn implementers(&self, iface: &ClassName) -> Vec<ClassName> {
        self.classes
            .values()
            .filter(|c| !c.is_interface())
            .filter(|c| self.implements(c.name(), iface))
            .map(|c| c.name().clone())
            .collect()
    }

    /// Whether `class` implements `iface` directly or transitively.
    pub fn implements(&self, class: &ClassName, iface: &ClassName) -> bool {
        let mut queue = VecDeque::from([class.clone()]);
        let mut seen = BTreeSet::new();
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if &cur != class && &cur == iface {
                return true;
            }
            if let Some(c) = self.classes.get(&cur) {
                for i in c.interfaces() {
                    if i == iface {
                        return true;
                    }
                    queue.push_back(i.clone());
                }
                if let Some(s) = c.superclass() {
                    queue.push_back(s.clone());
                }
            } else if &cur == iface {
                return true;
            }
        }
        false
    }

    /// Every interface (defined or platform) that `class` transitively
    /// implements, used by the advanced search to decide which interface
    /// type indicates the ending method (§IV-B).
    pub fn interfaces_of(&self, class: &ClassName) -> Vec<ClassName> {
        let mut out = Vec::new();
        let mut queue = VecDeque::from([class.clone()]);
        let mut seen = BTreeSet::new();
        while let Some(cur) = queue.pop_front() {
            if !seen.insert(cur.clone()) {
                continue;
            }
            if let Some(c) = self.classes.get(&cur) {
                for i in c.interfaces() {
                    if !out.contains(i) {
                        out.push(i.clone());
                    }
                    queue.push_back(i.clone());
                }
                if let Some(s) = c.superclass() {
                    queue.push_back(s.clone());
                }
            }
        }
        out
    }

    /// Resolves virtual dispatch: the concrete method actually executed
    /// when `declared` is invoked on a receiver of runtime class
    /// `receiver`. Walks the superclass chain upward from `receiver`
    /// looking for a sub-signature match, like the JVM's method resolution.
    pub fn resolve_dispatch(
        &self,
        receiver: &ClassName,
        declared: &MethodSig,
    ) -> Option<MethodSig> {
        let mut cur = receiver.clone();
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 1_000 {
                return None;
            }
            let class = self.classes.get(&cur)?;
            if let Some(m) = class.find_method_by_sub_signature(declared) {
                if m.body().is_some() || m.modifiers().is_abstract() {
                    return Some(m.sig().clone());
                }
            }
            cur = class.superclass()?.clone();
        }
    }

    /// All concrete override targets of `declared` over the defined
    /// hierarchy — the CHA call-target set used by the whole-app baseline.
    pub fn cha_targets(&self, declared: &MethodSig) -> Vec<MethodSig> {
        let mut out = BTreeSet::new();
        // The statically named class itself (if it concretely defines it).
        if let Some(resolved) = self.resolve_dispatch(declared.class(), declared) {
            out.insert(resolved);
        }
        // Any subclass or implementer overriding it.
        let below: Vec<ClassName> = if self
            .classes
            .get(declared.class())
            .is_some_and(Class::is_interface)
        {
            self.implementers(declared.class())
        } else {
            self.subclasses_transitive(declared.class())
        };
        for sub in below {
            if let Some(resolved) = self.resolve_dispatch(&sub, declared) {
                out.insert(resolved);
            }
        }
        out.into_iter().collect()
    }

    /// Classes whose bytecode references `target` anywhere (field access,
    /// invoke, const-class, new-instance, or type mention). This is the
    /// class-level "invoked by" relation the recursive `<clinit>` search
    /// walks (§IV-C). The IR-level implementation exists for testing; the
    /// production path goes through the bytecode-text search engine.
    pub fn classes_referencing(&self, target: &ClassName) -> Vec<ClassName> {
        use crate::stmt::{Place, Rvalue, Stmt};
        let mut out = BTreeSet::new();
        for class in self.classes.values() {
            if class.name() == target {
                continue;
            }
            let mut references =
                class.superclass() == Some(target) || class.interfaces().contains(target);
            if !references {
                'outer: for m in class.methods() {
                    let Some(body) = m.body() else { continue };
                    for s in body.stmts() {
                        if stmt_references(s, target) {
                            references = true;
                            break 'outer;
                        }
                    }
                }
            }
            if references {
                out.insert(class.name().clone());
            }
        }
        fn place_refs(p: &Place, t: &ClassName) -> bool {
            match p {
                Place::InstanceField { field, .. } | Place::StaticField(field) => {
                    field.class() == t
                }
                _ => false,
            }
        }
        fn stmt_references(s: &Stmt, t: &ClassName) -> bool {
            if let Some(ie) = s.invoke_expr() {
                if ie.callee.class() == t {
                    return true;
                }
            }
            match s {
                Stmt::Assign { place, rvalue } => {
                    if place_refs(place, t) {
                        return true;
                    }
                    match rvalue {
                        Rvalue::New(c) | Rvalue::InstanceOf(c, _) => c == t,
                        Rvalue::Read(p) => place_refs(p, t),
                        Rvalue::Cast(ty, _) => ty.class_name() == Some(t),
                        _ => false,
                    }
                }
                _ => false,
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::{Class, Method, MethodBody};
    use crate::stmt::{InvokeExpr, LocalId, Place, Rvalue, Stmt};
    use crate::types::{Modifiers, Type};

    fn msig(class: &str, name: &str) -> MethodSig {
        MethodSig::new(class, name, vec![], Type::Void)
    }

    fn empty_method(class: &str, name: &str, m: Modifiers) -> Method {
        let mut body = MethodBody::new();
        body.push(Stmt::Return(None));
        Method::new(msig(class, name), m, body)
    }

    /// Hierarchy: IServer (iface) <- SuperServer <- NetcastHttpServer <- ChildServer
    fn sample() -> Program {
        let mut p = Program::new();

        let mut iface = Class::new(
            ClassName::new("com.x.IServer"),
            Modifiers::public().with_interface(),
        );
        iface.add_method(Method::new_abstract(
            msig("com.x.IServer", "start"),
            Modifiers::public(),
        ));
        p.add_class(iface);

        let mut sup = Class::new(ClassName::new("com.x.SuperServer"), Modifiers::public());
        sup.add_interface(ClassName::new("com.x.IServer"));
        sup.add_method(empty_method(
            "com.x.SuperServer",
            "start",
            Modifiers::public(),
        ));
        p.add_class(sup);

        let mut mid = Class::new(
            ClassName::new("com.x.NetcastHttpServer"),
            Modifiers::public(),
        );
        mid.set_superclass(ClassName::new("com.x.SuperServer"));
        mid.add_method(empty_method(
            "com.x.NetcastHttpServer",
            "start",
            Modifiers::public(),
        ));
        p.add_class(mid);

        let mut child = Class::new(ClassName::new("com.x.ChildServer"), Modifiers::public());
        child.set_superclass(ClassName::new("com.x.NetcastHttpServer"));
        // ChildServer does NOT override start()
        child.add_method(empty_method(
            "com.x.ChildServer",
            "stop",
            Modifiers::public(),
        ));
        p.add_class(child);

        p
    }

    #[test]
    fn subtype_queries() {
        let p = sample();
        let child = ClassName::new("com.x.ChildServer");
        let sup = ClassName::new("com.x.SuperServer");
        let iface = ClassName::new("com.x.IServer");
        assert!(p.is_subtype_of(&child, &sup));
        assert!(p.is_subtype_of(&child, &iface));
        assert!(p.is_subtype_of(&child, &child));
        assert!(!p.is_subtype_of(&sup, &child));
    }

    #[test]
    fn subclasses_and_implementers() {
        let p = sample();
        let subs = p.subclasses_transitive(&ClassName::new("com.x.SuperServer"));
        assert_eq!(subs.len(), 2);
        let impls = p.implementers(&ClassName::new("com.x.IServer"));
        assert_eq!(impls.len(), 3); // SuperServer, NetcastHttpServer, ChildServer
    }

    #[test]
    fn dispatch_resolution_walks_up() {
        let p = sample();
        // ChildServer does not override start(): dispatch resolves to
        // NetcastHttpServer.start().
        let resolved = p
            .resolve_dispatch(
                &ClassName::new("com.x.ChildServer"),
                &msig("com.x.NetcastHttpServer", "start"),
            )
            .unwrap();
        assert_eq!(resolved.class().as_str(), "com.x.NetcastHttpServer");
        // Dispatch on the middle class resolves to its own override.
        let resolved = p
            .resolve_dispatch(
                &ClassName::new("com.x.NetcastHttpServer"),
                &msig("com.x.SuperServer", "start"),
            )
            .unwrap();
        assert_eq!(resolved.class().as_str(), "com.x.NetcastHttpServer");
    }

    #[test]
    fn cha_targets_cover_overrides() {
        let p = sample();
        let targets = p.cha_targets(&msig("com.x.SuperServer", "start"));
        let names: Vec<&str> = targets.iter().map(|t| t.class().as_str()).collect();
        assert!(names.contains(&"com.x.SuperServer"));
        assert!(names.contains(&"com.x.NetcastHttpServer"));
        // interface dispatch
        let targets = p.cha_targets(&msig("com.x.IServer", "start"));
        assert!(!targets.is_empty());
    }

    #[test]
    fn classes_referencing_finds_uses() {
        let mut p = sample();
        let mut user = Class::new(ClassName::new("com.x.User"), Modifiers::public());
        let mut body = MethodBody::new();
        body.declare_local(LocalId(0), Type::object("com.x.NetcastHttpServer"));
        body.push(Stmt::Assign {
            place: Place::Local(LocalId(0)),
            rvalue: Rvalue::New(ClassName::new("com.x.NetcastHttpServer")),
        });
        body.push(Stmt::Invoke(InvokeExpr::call_virtual(
            msig("com.x.NetcastHttpServer", "start"),
            LocalId(0),
            vec![],
        )));
        body.push(Stmt::Return(None));
        user.add_method(Method::new(
            msig("com.x.User", "go"),
            Modifiers::public(),
            body,
        ));
        p.add_class(user);

        let refs = p.classes_referencing(&ClassName::new("com.x.NetcastHttpServer"));
        let names: Vec<&str> = refs.iter().map(ClassName::as_str).collect();
        assert!(names.contains(&"com.x.User"));
        assert!(names.contains(&"com.x.ChildServer")); // via extends
    }

    #[test]
    fn counting() {
        let p = sample();
        assert_eq!(p.class_count(), 4);
        assert!(p.method_count() >= 4);
        assert!(p.stmt_count() >= 3);
    }

    #[test]
    #[should_panic(expected = "duplicate class")]
    fn duplicate_class_panics() {
        let mut p = Program::new();
        let c = Class::new(ClassName::new("com.a.B"), Modifiers::public());
        p.add_class(c.clone());
        p.add_class(c);
    }
}
