//! Method bodies, methods, fields, and classes.

use crate::stmt::{LocalId, Stmt};
use crate::types::{ClassName, FieldSig, MethodSig, Modifiers, Type};
use std::collections::BTreeMap;
use std::fmt;

/// A declared local with its static type.
#[derive(Clone, PartialEq, Debug)]
pub struct Local {
    /// The register id.
    pub id: LocalId,
    /// The declared type.
    pub ty: Type,
}

/// A straight-line-with-branches method body: a statement list addressed by
/// index, plus a local table.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MethodBody {
    locals: BTreeMap<u32, Type>,
    stmts: Vec<Stmt>,
}

impl MethodBody {
    /// An empty body.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares (or re-types) a local.
    pub fn declare_local(&mut self, id: LocalId, ty: Type) {
        self.locals.insert(id.0, ty);
    }

    /// The declared type of a local, if known.
    pub fn local_type(&self, id: LocalId) -> Option<&Type> {
        self.locals.get(&id.0)
    }

    /// All declared locals in id order.
    pub fn locals(&self) -> impl Iterator<Item = Local> + '_ {
        self.locals.iter().map(|(id, ty)| Local {
            id: LocalId(*id),
            ty: ty.clone(),
        })
    }

    /// Appends a statement, returning its index.
    pub fn push(&mut self, stmt: Stmt) -> usize {
        self.stmts.push(stmt);
        self.stmts.len() - 1
    }

    /// The statements in order.
    pub fn stmts(&self) -> &[Stmt] {
        &self.stmts
    }

    /// Mutable access for builders that patch branch targets.
    pub fn stmts_mut(&mut self) -> &mut [Stmt] {
        &mut self.stmts
    }

    /// The statement at `idx`.
    pub fn stmt(&self, idx: usize) -> Option<&Stmt> {
        self.stmts.get(idx)
    }

    /// Number of statements.
    pub fn len(&self) -> usize {
        self.stmts.len()
    }

    /// Whether the body has no statements.
    pub fn is_empty(&self) -> bool {
        self.stmts.is_empty()
    }

    /// Indices of statements containing an invoke of `callee` (exact
    /// declared-signature match). This is the "quick forward analysis via
    /// Soot to find the actual call site" from §IV-A step 4.
    pub fn call_sites_of(&self, callee: &MethodSig) -> Vec<usize> {
        self.stmts
            .iter()
            .enumerate()
            .filter(|(_, s)| s.invoke_expr().is_some_and(|ie| &ie.callee == callee))
            .map(|(i, _)| i)
            .collect()
    }
}

/// A method: signature, modifiers, and an optional body (abstract and
/// native methods have none).
#[derive(Clone, PartialEq, Debug)]
pub struct Method {
    sig: MethodSig,
    modifiers: Modifiers,
    body: Option<MethodBody>,
}

impl Method {
    /// Creates a concrete method.
    pub fn new(sig: MethodSig, modifiers: Modifiers, body: MethodBody) -> Self {
        Method {
            sig,
            modifiers,
            body: Some(body),
        }
    }

    /// Creates an abstract (bodyless) method.
    pub fn new_abstract(sig: MethodSig, modifiers: Modifiers) -> Self {
        Method {
            sig,
            modifiers: modifiers.with_abstract(),
            body: None,
        }
    }

    /// Reassembles a method from decoded parts, preserving the modifier
    /// bits exactly (unlike [`Method::new_abstract`], which forces the
    /// `abstract` bit — a decoded native method must stay bodyless and
    /// non-abstract). Wire-decoder only.
    pub(crate) fn from_parts(
        sig: MethodSig,
        modifiers: Modifiers,
        body: Option<MethodBody>,
    ) -> Self {
        Method {
            sig,
            modifiers,
            body,
        }
    }

    /// The signature.
    pub fn sig(&self) -> &MethodSig {
        &self.sig
    }

    /// The modifiers.
    pub fn modifiers(&self) -> Modifiers {
        self.modifiers
    }

    /// The body, if concrete.
    pub fn body(&self) -> Option<&MethodBody> {
        self.body.as_ref()
    }

    /// Mutable access to the body, if concrete — the handle version
    /// mutation uses to rewrite statements in place while keeping the
    /// signature (and therefore every caller) intact.
    pub fn body_mut(&mut self) -> Option<&mut MethodBody> {
        self.body.as_mut()
    }

    /// Whether the method is a "signature method" in the paper's sense
    /// (§IV-A): static, private, or a constructor — cases where the basic
    /// signature-based bytecode search is sound because the call site must
    /// name this exact class.
    pub fn is_signature_method(&self) -> bool {
        self.modifiers.is_static() || self.modifiers.is_private() || self.sig.is_init()
    }
}

/// A field definition inside a class.
#[derive(Clone, PartialEq, Debug)]
pub struct FieldDef {
    sig: FieldSig,
    modifiers: Modifiers,
}

impl FieldDef {
    /// Creates a field definition.
    pub fn new(sig: FieldSig, modifiers: Modifiers) -> Self {
        FieldDef { sig, modifiers }
    }

    /// The field signature.
    pub fn sig(&self) -> &FieldSig {
        &self.sig
    }

    /// The modifiers.
    pub fn modifiers(&self) -> Modifiers {
        self.modifiers
    }
}

/// A class (or interface) definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Class {
    name: ClassName,
    superclass: Option<ClassName>,
    interfaces: Vec<ClassName>,
    modifiers: Modifiers,
    fields: Vec<FieldDef>,
    methods: Vec<Method>,
}

impl Class {
    /// Creates a class extending `java.lang.Object` by default.
    pub fn new(name: ClassName, modifiers: Modifiers) -> Self {
        Class {
            name,
            superclass: Some(ClassName::new("java.lang.Object")),
            interfaces: Vec::new(),
            modifiers,
            fields: Vec::new(),
            methods: Vec::new(),
        }
    }

    /// Reassembles a class from decoded parts, preserving the superclass
    /// exactly (including `None`, which [`Class::new`] cannot express —
    /// it defaults to `java.lang.Object`). The caller is responsible for
    /// the invariants `add_method` asserts (methods declared on this
    /// class, no duplicate signatures); the wire decoder validates both
    /// before constructing.
    pub(crate) fn from_parts(
        name: ClassName,
        superclass: Option<ClassName>,
        interfaces: Vec<ClassName>,
        modifiers: Modifiers,
        fields: Vec<FieldDef>,
        methods: Vec<Method>,
    ) -> Self {
        Class {
            name,
            superclass,
            interfaces,
            modifiers,
            fields,
            methods,
        }
    }

    /// The class name.
    pub fn name(&self) -> &ClassName {
        &self.name
    }

    /// The direct superclass (None only for `java.lang.Object` itself).
    pub fn superclass(&self) -> Option<&ClassName> {
        self.superclass.as_ref()
    }

    /// Sets the superclass.
    pub fn set_superclass(&mut self, sup: ClassName) {
        self.superclass = Some(sup);
    }

    /// Directly implemented interfaces.
    pub fn interfaces(&self) -> &[ClassName] {
        &self.interfaces
    }

    /// Adds an implemented interface.
    pub fn add_interface(&mut self, iface: ClassName) {
        if !self.interfaces.contains(&iface) {
            self.interfaces.push(iface);
        }
    }

    /// The class modifiers.
    pub fn modifiers(&self) -> Modifiers {
        self.modifiers
    }

    /// Whether this is an interface definition.
    pub fn is_interface(&self) -> bool {
        self.modifiers.is_interface()
    }

    /// The declared fields.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Adds a field.
    pub fn add_field(&mut self, field: FieldDef) {
        self.fields.push(field);
    }

    /// The declared methods.
    pub fn methods(&self) -> &[Method] {
        &self.methods
    }

    /// Adds a method.
    ///
    /// # Panics
    /// Panics if the method's declaring class differs from this class, or
    /// if a method with the same signature already exists.
    pub fn add_method(&mut self, method: Method) {
        assert_eq!(
            method.sig().class(),
            &self.name,
            "method declared on wrong class"
        );
        assert!(
            self.find_method(method.sig()).is_none(),
            "duplicate method {}",
            method.sig()
        );
        self.methods.push(method);
    }

    /// Looks up a declared method by exact signature.
    pub fn find_method(&self, sig: &MethodSig) -> Option<&Method> {
        self.methods.iter().find(|m| m.sig() == sig)
    }

    /// Mutable lookup by exact signature. Declaration order (and hence
    /// the dump/chunk encoding order) is unaffected by edits through
    /// this handle.
    pub fn find_method_mut(&mut self, sig: &MethodSig) -> Option<&mut Method> {
        self.methods.iter_mut().find(|m| m.sig() == sig)
    }

    /// Removes a declared method by exact signature, preserving the
    /// declaration order of the rest.
    pub fn remove_method(&mut self, sig: &MethodSig) -> Option<Method> {
        let idx = self.methods.iter().position(|m| m.sig() == sig)?;
        Some(self.methods.remove(idx))
    }

    /// Looks up a declared method matching `sig`'s sub-signature (name +
    /// params + return), ignoring the declaring class. This is the overload
    /// check used when deciding whether a child class needs its own search
    /// signature (§IV-A).
    pub fn find_method_by_sub_signature(&self, sig: &MethodSig) -> Option<&Method> {
        self.methods
            .iter()
            .find(|m| m.sig().same_sub_signature(sig))
    }

    /// All declared constructors.
    pub fn constructors(&self) -> impl Iterator<Item = &Method> + '_ {
        self.methods.iter().filter(|m| m.sig().is_init())
    }

    /// The static initializer, if present.
    pub fn clinit(&self) -> Option<&Method> {
        self.methods.iter().find(|m| m.sig().is_clinit())
    }

    /// Total statement count across all concrete methods — the "code size"
    /// proxy used by the workload generators.
    pub fn stmt_count(&self) -> usize {
        self.methods
            .iter()
            .filter_map(|m| m.body())
            .map(MethodBody::len)
            .sum()
    }
}

impl fmt::Display for Class {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} class {}", self.modifiers, self.name)?;
        if let Some(s) = &self.superclass {
            writeln!(f, "    extends {s}")?;
        }
        for i in &self.interfaces {
            writeln!(f, "    implements {i}")?;
        }
        for fd in &self.fields {
            writeln!(f, "    {} {}", fd.modifiers(), fd.sig())?;
        }
        for m in &self.methods {
            writeln!(f, "    {} {}", m.modifiers(), m.sig())?;
            if let Some(b) = m.body() {
                for (i, s) in b.stmts().iter().enumerate() {
                    writeln!(f, "        {i:>3}: {s}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stmt::{InvokeExpr, Value};

    fn sig(class: &str, name: &str) -> MethodSig {
        MethodSig::new(class, name, vec![], Type::Void)
    }

    #[test]
    fn body_call_sites() {
        let mut b = MethodBody::new();
        let callee = sig("com.a.B", "start");
        b.push(Stmt::Invoke(InvokeExpr::call_static(
            sig("com.a.C", "other"),
            vec![],
        )));
        b.push(Stmt::Invoke(InvokeExpr::call_virtual(
            callee.clone(),
            LocalId(0),
            vec![Value::int(1)],
        )));
        assert_eq!(b.call_sites_of(&callee), vec![1]);
        assert_eq!(
            b.call_sites_of(&sig("com.a.B", "missing")),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn signature_methods() {
        let stat = Method::new(
            sig("com.a.B", "m"),
            Modifiers::public_static(),
            MethodBody::new(),
        );
        let privm = Method::new(sig("com.a.B", "p"), Modifiers::private(), MethodBody::new());
        let ctor = Method::new(
            sig("com.a.B", "<init>"),
            Modifiers::public(),
            MethodBody::new(),
        );
        let pubm = Method::new(sig("com.a.B", "v"), Modifiers::public(), MethodBody::new());
        assert!(stat.is_signature_method());
        assert!(privm.is_signature_method());
        assert!(ctor.is_signature_method());
        assert!(!pubm.is_signature_method());
    }

    #[test]
    fn class_method_lookup() {
        let mut c = Class::new(ClassName::new("com.a.B"), Modifiers::public());
        c.add_method(Method::new(
            sig("com.a.B", "start"),
            Modifiers::public(),
            MethodBody::new(),
        ));
        assert!(c.find_method(&sig("com.a.B", "start")).is_some());
        // sub-signature lookup ignores the declaring class
        assert!(c
            .find_method_by_sub_signature(&sig("com.x.Y", "start"))
            .is_some());
        assert!(c.find_method(&sig("com.a.B", "stop")).is_none());
    }

    #[test]
    #[should_panic(expected = "duplicate method")]
    fn duplicate_method_panics() {
        let mut c = Class::new(ClassName::new("com.a.B"), Modifiers::public());
        let m = Method::new(sig("com.a.B", "m"), Modifiers::public(), MethodBody::new());
        c.add_method(m.clone());
        c.add_method(m);
    }

    #[test]
    fn class_defaults_to_object_super() {
        let c = Class::new(ClassName::new("com.a.B"), Modifiers::public());
        assert_eq!(
            c.superclass().map(ClassName::as_str),
            Some("java.lang.Object")
        );
        assert!(!c.is_interface());
    }
}
