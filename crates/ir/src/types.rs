//! Core name and type vocabulary shared by every analysis layer.
//!
//! Class, method, and field names use cheaply-clonable interned strings
//! ([`std::sync::Arc`]) because signatures are copied constantly during
//! search-driven backtracking.

use std::fmt;
use std::sync::Arc;

/// A fully-qualified Java class name in dotted form, e.g.
/// `com.connectsdk.service.netcast.NetcastHttpServer`.
///
/// Inner classes keep the `$` separator (`com.a.Outer$1`), matching the
/// Soot/Jimple convention used throughout the paper.
///
/// ```
/// use backdroid_ir::ClassName;
/// let c = ClassName::new("com.example.Main$1");
/// assert!(c.is_inner_class());
/// assert_eq!(c.package(), "com.example");
/// assert_eq!(c.simple_name(), "Main$1");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassName(Arc<str>);

impl ClassName {
    /// Creates a class name from its dotted representation.
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassName(Arc::from(name.as_ref()))
    }

    /// The dotted name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The package prefix (empty for the default package).
    pub fn package(&self) -> &str {
        match self.0.rfind('.') {
            Some(i) => &self.0[..i],
            None => "",
        }
    }

    /// The unqualified class name, `$` separators included.
    pub fn simple_name(&self) -> &str {
        match self.0.rfind('.') {
            Some(i) => &self.0[i + 1..],
            None => &self.0,
        }
    }

    /// Whether this is a (possibly anonymous) inner class.
    pub fn is_inner_class(&self) -> bool {
        self.simple_name().contains('$')
    }

    /// Whether the class belongs to the Android/Java platform rather than
    /// application code. Platform classes never appear in an app's DEX, so
    /// they can never be *defined* in a [`crate::Program`], only referenced.
    pub fn is_platform(&self) -> bool {
        const PLATFORM_PREFIXES: &[&str] = &[
            "java.",
            "javax.",
            "android.",
            "androidx.",
            "dalvik.",
            "org.apache.http.",
            "org.json.",
            "org.w3c.",
            "org.xml.",
            "junit.",
            "kotlin.",
        ];
        PLATFORM_PREFIXES.iter().any(|p| self.0.starts_with(p))
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassName({})", self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName::new(s)
    }
}

impl From<String> for ClassName {
    fn from(s: String) -> Self {
        ClassName::new(s)
    }
}

/// A Java/DEX-level type.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
#[allow(missing_docs)]
pub enum Type {
    /// The `void` return pseudo-type.
    Void,
    Boolean,
    Byte,
    Short,
    Char,
    Int,
    Long,
    Float,
    Double,
    /// A reference type named by its class.
    Object(ClassName),
    /// An array of the element type.
    Array(Box<Type>),
}

impl Type {
    /// Convenience constructor for an object type.
    pub fn object(name: impl AsRef<str>) -> Self {
        Type::Object(ClassName::new(name))
    }

    /// Convenience constructor for an array of `elem`.
    pub fn array(elem: Type) -> Self {
        Type::Array(Box::new(elem))
    }

    /// `java.lang.String`, used pervasively by sink parameters.
    pub fn string() -> Self {
        Type::object("java.lang.String")
    }

    /// Whether the type is a reference (object or array) type.
    pub fn is_reference(&self) -> bool {
        matches!(self, Type::Object(_) | Type::Array(_))
    }

    /// The class name if this is an object type.
    pub fn class_name(&self) -> Option<&ClassName> {
        match self {
            Type::Object(c) => Some(c),
            _ => None,
        }
    }

    /// JVM/DEX descriptor form: `I`, `J`, `Lcom/a/B;`, `[I` …
    pub fn descriptor(&self) -> String {
        match self {
            Type::Void => "V".into(),
            Type::Boolean => "Z".into(),
            Type::Byte => "B".into(),
            Type::Short => "S".into(),
            Type::Char => "C".into(),
            Type::Int => "I".into(),
            Type::Long => "J".into(),
            Type::Float => "F".into(),
            Type::Double => "D".into(),
            Type::Object(c) => format!("L{};", c.as_str().replace('.', "/")),
            Type::Array(e) => format!("[{}", e.descriptor()),
        }
    }

    /// Parses a descriptor back into a type.
    ///
    /// Returns `None` on malformed input or trailing garbage.
    pub fn from_descriptor(desc: &str) -> Option<Type> {
        let (ty, rest) = Self::parse_descriptor_prefix(desc)?;
        if rest.is_empty() {
            Some(ty)
        } else {
            None
        }
    }

    /// Parses one descriptor from the front of `desc`, returning the type
    /// and the unconsumed suffix. Used for parsing parameter lists.
    pub fn parse_descriptor_prefix(desc: &str) -> Option<(Type, &str)> {
        let mut chars = desc.char_indices();
        let (_, first) = chars.next()?;
        match first {
            'V' => Some((Type::Void, &desc[1..])),
            'Z' => Some((Type::Boolean, &desc[1..])),
            'B' => Some((Type::Byte, &desc[1..])),
            'S' => Some((Type::Short, &desc[1..])),
            'C' => Some((Type::Char, &desc[1..])),
            'I' => Some((Type::Int, &desc[1..])),
            'J' => Some((Type::Long, &desc[1..])),
            'F' => Some((Type::Float, &desc[1..])),
            'D' => Some((Type::Double, &desc[1..])),
            'L' => {
                let end = desc.find(';')?;
                let cls = &desc[1..end];
                if cls.is_empty() {
                    return None;
                }
                Some((
                    Type::Object(ClassName::new(cls.replace('/', "."))),
                    &desc[end + 1..],
                ))
            }
            '[' => {
                let (elem, rest) = Self::parse_descriptor_prefix(&desc[1..])?;
                if elem == Type::Void {
                    return None;
                }
                Some((Type::Array(Box::new(elem)), rest))
            }
            _ => None,
        }
    }

    /// Java source form used by Soot signatures (`int`, `java.lang.String`,
    /// `byte[]`).
    pub fn java_name(&self) -> String {
        match self {
            Type::Void => "void".into(),
            Type::Boolean => "boolean".into(),
            Type::Byte => "byte".into(),
            Type::Short => "short".into(),
            Type::Char => "char".into(),
            Type::Int => "int".into(),
            Type::Long => "long".into(),
            Type::Float => "float".into(),
            Type::Double => "double".into(),
            Type::Object(c) => c.as_str().into(),
            Type::Array(e) => format!("{}[]", e.java_name()),
        }
    }

    /// Parses the Java source form emitted by [`Type::java_name`].
    pub fn from_java_name(name: &str) -> Option<Type> {
        let name = name.trim();
        if let Some(stripped) = name.strip_suffix("[]") {
            return Some(Type::Array(Box::new(Type::from_java_name(stripped)?)));
        }
        Some(match name {
            "void" => Type::Void,
            "boolean" => Type::Boolean,
            "byte" => Type::Byte,
            "short" => Type::Short,
            "char" => Type::Char,
            "int" => Type::Int,
            "long" => Type::Long,
            "float" => Type::Float,
            "double" => Type::Double,
            "" => return None,
            other => Type::Object(ClassName::new(other)),
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.java_name())
    }
}

/// A full method signature in the Soot style:
/// `<com.a.B: void start(int,java.lang.String)>`.
///
/// ```
/// use backdroid_ir::{MethodSig, Type};
/// let m = MethodSig::new("com.a.B", "start", vec![Type::Int], Type::Void);
/// assert_eq!(m.to_string(), "<com.a.B: void start(int)>");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodSig {
    class: ClassName,
    name: Arc<str>,
    params: Arc<[Type]>,
    ret: Type,
}

impl MethodSig {
    /// Creates a method signature.
    pub fn new(
        class: impl Into<ClassName>,
        name: impl AsRef<str>,
        params: Vec<Type>,
        ret: Type,
    ) -> Self {
        MethodSig {
            class: class.into(),
            name: Arc::from(name.as_ref()),
            params: Arc::from(params),
            ret,
        }
    }

    /// The declaring class.
    pub fn class(&self) -> &ClassName {
        &self.class
    }

    /// The method name (`<init>` and `<clinit>` for constructors and
    /// static initializers).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parameter types, excluding the implicit receiver.
    pub fn params(&self) -> &[Type] {
        &self.params
    }

    /// The return type.
    pub fn ret(&self) -> &Type {
        &self.ret
    }

    /// Whether this is an instance constructor.
    pub fn is_init(&self) -> bool {
        &*self.name == "<init>"
    }

    /// Whether this is a static class initializer.
    pub fn is_clinit(&self) -> bool {
        &*self.name == "<clinit>"
    }

    /// The signature with the same name/params/return on another class.
    /// Used for child/parent-class search signatures (paper §IV-A).
    pub fn on_class(&self, class: ClassName) -> MethodSig {
        MethodSig {
            class,
            name: self.name.clone(),
            params: self.params.clone(),
            ret: self.ret.clone(),
        }
    }

    /// The "sub-method signature" — name, parameters, and return type
    /// without the declaring class. Two methods with equal sub-signatures
    /// participate in overriding (paper §IV-B uses this to stop the
    /// forward object taint at super-class ending methods).
    pub fn sub_signature(&self) -> String {
        format!(
            "{} {}({})",
            self.ret.java_name(),
            self.name,
            self.params
                .iter()
                .map(Type::java_name)
                .collect::<Vec<_>>()
                .join(",")
        )
    }

    /// Whether `other` has the same name, parameter, and return types.
    pub fn same_sub_signature(&self, other: &MethodSig) -> bool {
        self.name == other.name && self.params == other.params && self.ret == other.ret
    }

    /// Parses the Soot form emitted by [`fmt::Display`].
    pub fn parse(s: &str) -> Option<MethodSig> {
        let s = s.trim();
        let inner = s.strip_prefix('<')?.strip_suffix('>')?;
        let (class, rest) = inner.split_once(": ")?;
        let (ret_and_name, params) = rest.split_once('(')?;
        let params = params.strip_suffix(')')?;
        let (ret, name) = ret_and_name.rsplit_once(' ')?;
        let ret = Type::from_java_name(ret)?;
        let params = if params.is_empty() {
            Vec::new()
        } else {
            params
                .split(',')
                .map(Type::from_java_name)
                .collect::<Option<Vec<_>>>()?
        };
        Some(MethodSig::new(class, name, params, ret))
    }
}

impl fmt::Display for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "<{}: {} {}({})>",
            self.class,
            self.ret.java_name(),
            self.name,
            self.params
                .iter()
                .map(Type::java_name)
                .collect::<Vec<_>>()
                .join(",")
        )
    }
}

impl fmt::Debug for MethodSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MethodSig({self})")
    }
}

/// A field signature in the Soot style:
/// `<com.a.B: int myPort>`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FieldSig {
    class: ClassName,
    name: Arc<str>,
    ty: Type,
}

impl FieldSig {
    /// Creates a field signature.
    pub fn new(class: impl Into<ClassName>, name: impl AsRef<str>, ty: Type) -> Self {
        FieldSig {
            class: class.into(),
            name: Arc::from(name.as_ref()),
            ty,
        }
    }

    /// The declaring class.
    pub fn class(&self) -> &ClassName {
        &self.class
    }

    /// The field name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The field type.
    pub fn ty(&self) -> &Type {
        &self.ty
    }

    /// Parses the Soot form emitted by [`fmt::Display`].
    pub fn parse(s: &str) -> Option<FieldSig> {
        let inner = s.trim().strip_prefix('<')?.strip_suffix('>')?;
        let (class, rest) = inner.split_once(": ")?;
        let (ty, name) = rest.rsplit_once(' ')?;
        Some(FieldSig::new(class, name, Type::from_java_name(ty)?))
    }
}

impl fmt::Display for FieldSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}: {} {}>", self.class, self.ty.java_name(), self.name)
    }
}

impl fmt::Debug for FieldSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FieldSig({self})")
    }
}

/// Access and property modifiers for classes, methods, and fields.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Modifiers {
    bits: u32,
}

#[allow(missing_docs)]
impl Modifiers {
    pub const PUBLIC: u32 = 0x0001;
    pub const PRIVATE: u32 = 0x0002;
    pub const PROTECTED: u32 = 0x0004;
    pub const STATIC: u32 = 0x0008;
    pub const FINAL: u32 = 0x0010;
    pub const SYNCHRONIZED: u32 = 0x0020;
    pub const ABSTRACT: u32 = 0x0400;
    pub const INTERFACE: u32 = 0x0200;
    pub const NATIVE: u32 = 0x0100;
    pub const CONSTRUCTOR: u32 = 0x10000;

    /// An empty (package-private) modifier set.
    pub fn none() -> Self {
        Modifiers { bits: 0 }
    }

    /// `public`.
    pub fn public() -> Self {
        Modifiers { bits: Self::PUBLIC }
    }

    /// `private`.
    pub fn private() -> Self {
        Modifiers {
            bits: Self::PRIVATE,
        }
    }

    /// `public static`.
    pub fn public_static() -> Self {
        Modifiers {
            bits: Self::PUBLIC | Self::STATIC,
        }
    }

    /// Adds the `static` bit.
    pub fn with_static(mut self) -> Self {
        self.bits |= Self::STATIC;
        self
    }

    /// Adds the `abstract` bit.
    pub fn with_abstract(mut self) -> Self {
        self.bits |= Self::ABSTRACT;
        self
    }

    /// Adds the `interface` bit.
    pub fn with_interface(mut self) -> Self {
        self.bits |= Self::INTERFACE;
        self
    }

    /// Adds the `final` bit.
    pub fn with_final(mut self) -> Self {
        self.bits |= Self::FINAL;
        self
    }

    /// The raw DEX-style access-flag bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Reconstructs a modifier set from its raw bits — the inverse of
    /// [`Modifiers::bits`], used by the wire decoder.
    pub fn from_bits(bits: u32) -> Self {
        Modifiers { bits }
    }

    /// Whether the `static` bit is set.
    pub fn is_static(&self) -> bool {
        self.bits & Self::STATIC != 0
    }

    /// Whether the `private` bit is set.
    pub fn is_private(&self) -> bool {
        self.bits & Self::PRIVATE != 0
    }

    /// Whether the `public` bit is set.
    pub fn is_public(&self) -> bool {
        self.bits & Self::PUBLIC != 0
    }

    /// Whether the `abstract` bit is set.
    pub fn is_abstract(&self) -> bool {
        self.bits & Self::ABSTRACT != 0
    }

    /// Whether the `interface` bit is set.
    pub fn is_interface(&self) -> bool {
        self.bits & Self::INTERFACE != 0
    }

    /// Whether the `final` bit is set.
    pub fn is_final(&self) -> bool {
        self.bits & Self::FINAL != 0
    }
}

impl fmt::Display for Modifiers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.is_public() {
            parts.push("public");
        }
        if self.is_private() {
            parts.push("private");
        }
        if self.bits & Self::PROTECTED != 0 {
            parts.push("protected");
        }
        if self.is_static() {
            parts.push("static");
        }
        if self.is_final() {
            parts.push("final");
        }
        if self.is_abstract() {
            parts.push("abstract");
        }
        if self.is_interface() {
            parts.push("interface");
        }
        if parts.is_empty() {
            f.write_str("(package)")
        } else {
            f.write_str(&parts.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_name_parts() {
        let c = ClassName::new("com.connectsdk.service.NetcastTVService$1");
        assert_eq!(c.package(), "com.connectsdk.service");
        assert_eq!(c.simple_name(), "NetcastTVService$1");
        assert!(c.is_inner_class());
        assert!(!c.is_platform());
        assert!(ClassName::new("java.lang.Runnable").is_platform());
        assert!(ClassName::new("android.app.Activity").is_platform());
    }

    #[test]
    fn default_package_class() {
        let c = ClassName::new("Main");
        assert_eq!(c.package(), "");
        assert_eq!(c.simple_name(), "Main");
        assert!(!c.is_inner_class());
    }

    #[test]
    fn descriptors_round_trip() {
        let tys = [
            Type::Void,
            Type::Int,
            Type::Long,
            Type::Boolean,
            Type::Double,
            Type::object("java.lang.String"),
            Type::array(Type::Int),
            Type::array(Type::array(Type::object("com.a.B"))),
        ];
        for t in &tys {
            let d = t.descriptor();
            assert_eq!(Type::from_descriptor(&d).as_ref(), Some(t), "desc {d}");
        }
    }

    #[test]
    fn descriptor_rejects_malformed() {
        assert_eq!(Type::from_descriptor(""), None);
        assert_eq!(Type::from_descriptor("L"), None);
        assert_eq!(Type::from_descriptor("L;"), None);
        assert_eq!(Type::from_descriptor("Q"), None);
        assert_eq!(Type::from_descriptor("II"), None);
        assert_eq!(Type::from_descriptor("[V"), None);
    }

    #[test]
    fn java_names_round_trip() {
        for t in [
            Type::Void,
            Type::Int,
            Type::object("com.a.B"),
            Type::array(Type::Byte),
        ] {
            assert_eq!(Type::from_java_name(&t.java_name()), Some(t));
        }
        assert_eq!(Type::from_java_name(""), None);
    }

    #[test]
    fn method_sig_display_and_parse() {
        let m = MethodSig::new(
            "com.connectsdk.service.netcast.NetcastHttpServer",
            "start",
            vec![],
            Type::Void,
        );
        let s = m.to_string();
        assert_eq!(
            s,
            "<com.connectsdk.service.netcast.NetcastHttpServer: void start()>"
        );
        assert_eq!(MethodSig::parse(&s), Some(m));

        let m2 = MethodSig::new(
            "com.a.B",
            "run",
            vec![Type::Int, Type::string()],
            Type::object("java.lang.Object"),
        );
        assert_eq!(MethodSig::parse(&m2.to_string()), Some(m2));
    }

    #[test]
    fn sub_signatures() {
        let a = MethodSig::new("com.a.Super", "start", vec![Type::Int], Type::Void);
        let b = a.on_class(ClassName::new("com.a.Child"));
        assert!(a.same_sub_signature(&b));
        assert_eq!(a.sub_signature(), "void start(int)");
        let c = MethodSig::new("com.a.Super", "start", vec![], Type::Void);
        assert!(!a.same_sub_signature(&c));
    }

    #[test]
    fn init_and_clinit() {
        let i = MethodSig::new("com.a.B", "<init>", vec![], Type::Void);
        let c = MethodSig::new("com.a.B", "<clinit>", vec![], Type::Void);
        assert!(i.is_init() && !i.is_clinit());
        assert!(c.is_clinit() && !c.is_init());
    }

    #[test]
    fn field_sig_display_and_parse() {
        let f = FieldSig::new("com.studiosol.util.NanoHTTPD", "myPort", Type::Int);
        let s = f.to_string();
        assert_eq!(s, "<com.studiosol.util.NanoHTTPD: int myPort>");
        assert_eq!(FieldSig::parse(&s), Some(f));
    }

    #[test]
    fn modifiers() {
        let m = Modifiers::public_static().with_final();
        assert!(m.is_public() && m.is_static() && m.is_final());
        assert!(!m.is_private());
        assert_eq!(m.to_string(), "public static final");
        assert_eq!(Modifiers::none().to_string(), "(package)");
    }
}
