//! The hand-rolled binary wire format shared by every snapshot layer.
//!
//! The build environment vendors API-subset stand-ins for serde (no
//! derive, no serializer), so artifact persistence is written by hand:
//! [`WireWriter`] / [`WireReader`] provide the primitive vocabulary —
//! LEB128 varints, zigzag signed varints, length-prefixed strings,
//! bit-exact `f64` — and this module layers the full IR vocabulary
//! ([`Type`] through [`Program`]) on top. Higher crates reuse the same
//! primitives for manifests ([`backdroid-manifest`]), indexed bytecode
//! text (`backdroid-search`), and the versioned snapshot container
//! (`backdroid-core`).
//!
//! Two properties are load-bearing:
//!
//! * **Determinism** — encoding is a pure function of the value (ordered
//!   containers only; callers sort anything hash-ordered), so equal
//!   artifacts produce byte-identical encodings and CI can diff
//!   snapshots across runs.
//! * **Total decoding** — a reader never panics and never allocates
//!   ahead of its input: every length is checked against the remaining
//!   bytes before use, and malformed tags or dangling references decode
//!   to [`WireError`], not to a crash. That is what lets the two-tier
//!   app store treat a corrupt on-disk snapshot as a cache miss.
//!
//! [`backdroid-manifest`]: https://example.invalid/backdroid-suite

use crate::body::{Class, FieldDef, Method, MethodBody};
use crate::stmt::{
    BinOp, CondOp, Const, IdentityKind, InvokeExpr, InvokeKind, LocalId, Place, Rvalue, Stmt, Value,
};
use crate::types::{ClassName, FieldSig, MethodSig, Modifiers, Type};
use crate::Program;
use std::collections::BTreeSet;
use std::fmt;

/// Why a wire decode failed. Corrupt input is an expected condition (the
/// disk tier feeds snapshots straight off the filesystem), so decoding is
/// total: every failure is one of these, never a panic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WireError {
    /// The input ended before the value it promised.
    Truncated,
    /// The bytes decoded to something structurally invalid (bad tag,
    /// non-UTF-8 string, dangling reference, duplicate definition).
    Malformed(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated"),
            WireError::Malformed(m) => write!(f, "malformed input: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

fn malformed(msg: impl Into<String>) -> WireError {
    WireError::Malformed(msg.into())
}

/// 64-bit FNV-1a over a byte slice — the checksum the snapshot container
/// stores next to its payload.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lane-widened FNV-1a: the same xor-multiply chain as [`fnv1a64`] but
/// over 8-byte little-endian lanes (zero-padded tail, input length
/// folded into the seed), roughly an order of magnitude faster on bulk
/// data. The snapshot container checksums its section blobs with this.
/// Not interchangeable with [`fnv1a64`] — the two hash the same bytes
/// to different values.
///
/// A single corrupted lane is always detected: each step is bijective
/// in the accumulator, so two states that diverge never re-converge on
/// identical remaining input.
pub fn fnv1a64_wide(bytes: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ (bytes.len() as u64).wrapping_mul(PRIME);
    let mut lanes = bytes.chunks_exact(8);
    for lane in &mut lanes {
        let w = u64::from_le_bytes(lane.try_into().expect("8-byte lane"));
        h = (h ^ w).wrapping_mul(PRIME);
    }
    let tail = lanes.remainder();
    if !tail.is_empty() {
        let mut last = [0u8; 8];
        last[..tail.len()].copy_from_slice(tail);
        h = (h ^ u64::from_le_bytes(last)).wrapping_mul(PRIME);
    }
    h
}

// ---------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------

/// An append-only encoder over a growable byte buffer.
#[derive(Default, Debug)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// A bool as one byte (`0` / `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// An unsigned LEB128 varint.
    pub fn put_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// A `usize` as an unsigned varint.
    pub fn put_len(&mut self, v: usize) {
        self.put_uvarint(v as u64);
    }

    /// A signed integer, zigzag-encoded then varint-encoded.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// An `f64`, bit-exact (NaN payloads round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// A fixed-width `u64`, little-endian — used for checksums, where a
    /// varint would let equal values encode at different widths.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Raw bytes with a varint length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len(v.len());
        self.buf.extend_from_slice(v);
    }

    /// A UTF-8 string with a varint length prefix.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// A cursor over an immutable byte slice. Every read is bounds-checked;
/// length prefixes are validated against the remaining input before any
/// allocation, so hostile lengths cannot force an out-of-memory.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the whole input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        let b = *self.buf.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// A bool encoded as `0` / `1` (anything else is malformed).
    pub fn get_bool(&mut self) -> Result<bool, WireError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(malformed(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// An unsigned LEB128 varint (at most 10 bytes).
    pub fn get_uvarint(&mut self) -> Result<u64, WireError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.get_u8()?;
            let bits = (byte & 0x7f) as u64;
            if shift == 63 && bits > 1 {
                return Err(malformed("varint overflows 64 bits"));
            }
            v |= bits << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(malformed("varint longer than 10 bytes"))
    }

    /// A length prefix for items at least `min_item_bytes` wide each:
    /// rejected up front if the remaining input cannot possibly hold that
    /// many, so corrupt lengths fail fast instead of allocating.
    pub fn get_len(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let n = self.get_uvarint()?;
        let n = usize::try_from(n).map_err(|_| malformed("length exceeds usize"))?;
        if n.saturating_mul(min_item_bytes.max(1)) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// A signed zigzag varint.
    pub fn get_ivarint(&mut self) -> Result<i64, WireError> {
        let z = self.get_uvarint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// A bit-exact `f64`.
    pub fn get_f64(&mut self) -> Result<f64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_bits(u64::from_le_bytes(raw)))
    }

    /// A fixed-width little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        if self.remaining() < 8 {
            return Err(WireError::Truncated);
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(raw))
    }

    /// Length-prefixed raw bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_len(1)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// A length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| malformed("string is not UTF-8"))
    }
}

// ---------------------------------------------------------------------
// Names, types, signatures
// ---------------------------------------------------------------------

/// Encodes a class name.
pub fn write_class_name(w: &mut WireWriter, c: &ClassName) {
    w.put_str(c.as_str());
}

/// Decodes a class name (must be non-empty).
pub fn read_class_name(r: &mut WireReader<'_>) -> Result<ClassName, WireError> {
    let s = r.get_str()?;
    if s.is_empty() {
        return Err(malformed("empty class name"));
    }
    Ok(ClassName::new(s))
}

const TY_VOID: u8 = 0;
const TY_BOOLEAN: u8 = 1;
const TY_BYTE: u8 = 2;
const TY_SHORT: u8 = 3;
const TY_CHAR: u8 = 4;
const TY_INT: u8 = 5;
const TY_LONG: u8 = 6;
const TY_FLOAT: u8 = 7;
const TY_DOUBLE: u8 = 8;
const TY_OBJECT: u8 = 9;
const TY_ARRAY: u8 = 10;

/// Encodes a type.
pub fn write_type(w: &mut WireWriter, t: &Type) {
    match t {
        Type::Void => w.put_u8(TY_VOID),
        Type::Boolean => w.put_u8(TY_BOOLEAN),
        Type::Byte => w.put_u8(TY_BYTE),
        Type::Short => w.put_u8(TY_SHORT),
        Type::Char => w.put_u8(TY_CHAR),
        Type::Int => w.put_u8(TY_INT),
        Type::Long => w.put_u8(TY_LONG),
        Type::Float => w.put_u8(TY_FLOAT),
        Type::Double => w.put_u8(TY_DOUBLE),
        Type::Object(c) => {
            w.put_u8(TY_OBJECT);
            write_class_name(w, c);
        }
        Type::Array(e) => {
            w.put_u8(TY_ARRAY);
            write_type(w, e);
        }
    }
}

/// Decodes a type.
pub fn read_type(r: &mut WireReader<'_>) -> Result<Type, WireError> {
    Ok(match r.get_u8()? {
        TY_VOID => Type::Void,
        TY_BOOLEAN => Type::Boolean,
        TY_BYTE => Type::Byte,
        TY_SHORT => Type::Short,
        TY_CHAR => Type::Char,
        TY_INT => Type::Int,
        TY_LONG => Type::Long,
        TY_FLOAT => Type::Float,
        TY_DOUBLE => Type::Double,
        TY_OBJECT => Type::Object(read_class_name(r)?),
        TY_ARRAY => Type::Array(Box::new(read_type(r)?)),
        tag => return Err(malformed(format!("unknown type tag {tag}"))),
    })
}

/// Encodes a method signature.
pub fn write_method_sig(w: &mut WireWriter, m: &MethodSig) {
    write_class_name(w, m.class());
    w.put_str(m.name());
    w.put_len(m.params().len());
    for p in m.params() {
        write_type(w, p);
    }
    write_type(w, m.ret());
}

/// Decodes a method signature.
pub fn read_method_sig(r: &mut WireReader<'_>) -> Result<MethodSig, WireError> {
    let class = read_class_name(r)?;
    let name = r.get_str()?.to_string();
    let n = r.get_len(1)?;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        params.push(read_type(r)?);
    }
    let ret = read_type(r)?;
    Ok(MethodSig::new(class, name, params, ret))
}

/// Encodes a field signature.
pub fn write_field_sig(w: &mut WireWriter, f: &FieldSig) {
    write_class_name(w, f.class());
    w.put_str(f.name());
    write_type(w, f.ty());
}

/// Decodes a field signature.
pub fn read_field_sig(r: &mut WireReader<'_>) -> Result<FieldSig, WireError> {
    let class = read_class_name(r)?;
    let name = r.get_str()?.to_string();
    let ty = read_type(r)?;
    Ok(FieldSig::new(class, name, ty))
}

fn write_modifiers(w: &mut WireWriter, m: Modifiers) {
    w.put_uvarint(m.bits() as u64);
}

fn read_modifiers(r: &mut WireReader<'_>) -> Result<Modifiers, WireError> {
    let bits = r.get_uvarint()?;
    let bits = u32::try_from(bits).map_err(|_| malformed("modifier bits exceed u32"))?;
    Ok(Modifiers::from_bits(bits))
}

// ---------------------------------------------------------------------
// Statements and operands
// ---------------------------------------------------------------------

const CONST_INT: u8 = 0;
const CONST_FLOAT: u8 = 1;
const CONST_STR: u8 = 2;
const CONST_CLASS: u8 = 3;
const CONST_NULL: u8 = 4;

fn write_const(w: &mut WireWriter, c: &Const) {
    match c {
        Const::Int(v) => {
            w.put_u8(CONST_INT);
            w.put_ivarint(*v);
        }
        Const::Float(v) => {
            w.put_u8(CONST_FLOAT);
            w.put_f64(*v);
        }
        Const::Str(s) => {
            w.put_u8(CONST_STR);
            w.put_str(s);
        }
        Const::Class(c) => {
            w.put_u8(CONST_CLASS);
            write_class_name(w, c);
        }
        Const::Null => w.put_u8(CONST_NULL),
    }
}

fn read_const(r: &mut WireReader<'_>) -> Result<Const, WireError> {
    Ok(match r.get_u8()? {
        CONST_INT => Const::Int(r.get_ivarint()?),
        CONST_FLOAT => Const::Float(r.get_f64()?),
        CONST_STR => Const::Str(r.get_str()?.to_string()),
        CONST_CLASS => Const::Class(read_class_name(r)?),
        CONST_NULL => Const::Null,
        tag => return Err(malformed(format!("unknown const tag {tag}"))),
    })
}

fn write_local(w: &mut WireWriter, l: LocalId) {
    w.put_uvarint(l.0 as u64);
}

fn read_local(r: &mut WireReader<'_>) -> Result<LocalId, WireError> {
    let v = r.get_uvarint()?;
    let v = u32::try_from(v).map_err(|_| malformed("local id exceeds u32"))?;
    Ok(LocalId(v))
}

const VALUE_LOCAL: u8 = 0;
const VALUE_CONST: u8 = 1;

fn write_value(w: &mut WireWriter, v: &Value) {
    match v {
        Value::Local(l) => {
            w.put_u8(VALUE_LOCAL);
            write_local(w, *l);
        }
        Value::Const(c) => {
            w.put_u8(VALUE_CONST);
            write_const(w, c);
        }
    }
}

fn read_value(r: &mut WireReader<'_>) -> Result<Value, WireError> {
    Ok(match r.get_u8()? {
        VALUE_LOCAL => Value::Local(read_local(r)?),
        VALUE_CONST => Value::Const(read_const(r)?),
        tag => return Err(malformed(format!("unknown value tag {tag}"))),
    })
}

const PLACE_LOCAL: u8 = 0;
const PLACE_IFIELD: u8 = 1;
const PLACE_SFIELD: u8 = 2;
const PLACE_ELEM: u8 = 3;

fn write_place(w: &mut WireWriter, p: &Place) {
    match p {
        Place::Local(l) => {
            w.put_u8(PLACE_LOCAL);
            write_local(w, *l);
        }
        Place::InstanceField { base, field } => {
            w.put_u8(PLACE_IFIELD);
            write_local(w, *base);
            write_field_sig(w, field);
        }
        Place::StaticField(field) => {
            w.put_u8(PLACE_SFIELD);
            write_field_sig(w, field);
        }
        Place::ArrayElem { base, index } => {
            w.put_u8(PLACE_ELEM);
            write_local(w, *base);
            write_value(w, index);
        }
    }
}

fn read_place(r: &mut WireReader<'_>) -> Result<Place, WireError> {
    Ok(match r.get_u8()? {
        PLACE_LOCAL => Place::Local(read_local(r)?),
        PLACE_IFIELD => Place::InstanceField {
            base: read_local(r)?,
            field: read_field_sig(r)?,
        },
        PLACE_SFIELD => Place::StaticField(read_field_sig(r)?),
        PLACE_ELEM => Place::ArrayElem {
            base: read_local(r)?,
            index: read_value(r)?,
        },
        tag => return Err(malformed(format!("unknown place tag {tag}"))),
    })
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Rem => 4,
        BinOp::And => 5,
        BinOp::Or => 6,
        BinOp::Xor => 7,
        BinOp::Shl => 8,
        BinOp::Shr => 9,
        BinOp::Ushr => 10,
        BinOp::Cmp => 11,
    }
}

fn binop_from(tag: u8) -> Result<BinOp, WireError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Rem,
        5 => BinOp::And,
        6 => BinOp::Or,
        7 => BinOp::Xor,
        8 => BinOp::Shl,
        9 => BinOp::Shr,
        10 => BinOp::Ushr,
        11 => BinOp::Cmp,
        _ => return Err(malformed(format!("unknown binop tag {tag}"))),
    })
}

fn condop_tag(op: CondOp) -> u8 {
    match op {
        CondOp::Eq => 0,
        CondOp::Ne => 1,
        CondOp::Lt => 2,
        CondOp::Le => 3,
        CondOp::Gt => 4,
        CondOp::Ge => 5,
    }
}

fn condop_from(tag: u8) -> Result<CondOp, WireError> {
    Ok(match tag {
        0 => CondOp::Eq,
        1 => CondOp::Ne,
        2 => CondOp::Lt,
        3 => CondOp::Le,
        4 => CondOp::Gt,
        5 => CondOp::Ge,
        _ => return Err(malformed(format!("unknown condop tag {tag}"))),
    })
}

fn invoke_kind_tag(k: InvokeKind) -> u8 {
    match k {
        InvokeKind::Virtual => 0,
        InvokeKind::Special => 1,
        InvokeKind::Static => 2,
        InvokeKind::Interface => 3,
        InvokeKind::Super => 4,
    }
}

fn invoke_kind_from(tag: u8) -> Result<InvokeKind, WireError> {
    Ok(match tag {
        0 => InvokeKind::Virtual,
        1 => InvokeKind::Special,
        2 => InvokeKind::Static,
        3 => InvokeKind::Interface,
        4 => InvokeKind::Super,
        _ => return Err(malformed(format!("unknown invoke kind tag {tag}"))),
    })
}

fn write_invoke(w: &mut WireWriter, ie: &InvokeExpr) {
    w.put_u8(invoke_kind_tag(ie.kind));
    write_method_sig(w, &ie.callee);
    match ie.base {
        Some(b) => {
            w.put_bool(true);
            write_local(w, b);
        }
        None => w.put_bool(false),
    }
    w.put_len(ie.args.len());
    for a in &ie.args {
        write_value(w, a);
    }
}

fn read_invoke(r: &mut WireReader<'_>) -> Result<InvokeExpr, WireError> {
    let kind = invoke_kind_from(r.get_u8()?)?;
    let callee = read_method_sig(r)?;
    let base = if r.get_bool()? {
        Some(read_local(r)?)
    } else {
        None
    };
    let n = r.get_len(1)?;
    let mut args = Vec::with_capacity(n);
    for _ in 0..n {
        args.push(read_value(r)?);
    }
    Ok(InvokeExpr {
        kind,
        callee,
        base,
        args,
    })
}

const RV_USE: u8 = 0;
const RV_READ: u8 = 1;
const RV_BINOP: u8 = 2;
const RV_CAST: u8 = 3;
const RV_INSTANCEOF: u8 = 4;
const RV_NEW: u8 = 5;
const RV_NEWARRAY: u8 = 6;
const RV_INVOKE: u8 = 7;
const RV_PHI: u8 = 8;
const RV_LENGTH: u8 = 9;

fn write_rvalue(w: &mut WireWriter, rv: &Rvalue) {
    match rv {
        Rvalue::Use(v) => {
            w.put_u8(RV_USE);
            write_value(w, v);
        }
        Rvalue::Read(p) => {
            w.put_u8(RV_READ);
            write_place(w, p);
        }
        Rvalue::Binop(op, a, b) => {
            w.put_u8(RV_BINOP);
            w.put_u8(binop_tag(*op));
            write_value(w, a);
            write_value(w, b);
        }
        Rvalue::Cast(t, v) => {
            w.put_u8(RV_CAST);
            write_type(w, t);
            write_value(w, v);
        }
        Rvalue::InstanceOf(c, v) => {
            w.put_u8(RV_INSTANCEOF);
            write_class_name(w, c);
            write_value(w, v);
        }
        Rvalue::New(c) => {
            w.put_u8(RV_NEW);
            write_class_name(w, c);
        }
        Rvalue::NewArray(t, len) => {
            w.put_u8(RV_NEWARRAY);
            write_type(w, t);
            write_value(w, len);
        }
        Rvalue::Invoke(ie) => {
            w.put_u8(RV_INVOKE);
            write_invoke(w, ie);
        }
        Rvalue::Phi(ls) => {
            w.put_u8(RV_PHI);
            w.put_len(ls.len());
            for l in ls {
                write_local(w, *l);
            }
        }
        Rvalue::Length(v) => {
            w.put_u8(RV_LENGTH);
            write_value(w, v);
        }
    }
}

fn read_rvalue(r: &mut WireReader<'_>) -> Result<Rvalue, WireError> {
    Ok(match r.get_u8()? {
        RV_USE => Rvalue::Use(read_value(r)?),
        RV_READ => Rvalue::Read(read_place(r)?),
        RV_BINOP => {
            let op = binop_from(r.get_u8()?)?;
            Rvalue::Binop(op, read_value(r)?, read_value(r)?)
        }
        RV_CAST => Rvalue::Cast(read_type(r)?, read_value(r)?),
        RV_INSTANCEOF => Rvalue::InstanceOf(read_class_name(r)?, read_value(r)?),
        RV_NEW => Rvalue::New(read_class_name(r)?),
        RV_NEWARRAY => Rvalue::NewArray(read_type(r)?, read_value(r)?),
        RV_INVOKE => Rvalue::Invoke(read_invoke(r)?),
        RV_PHI => {
            let n = r.get_len(1)?;
            let mut ls = Vec::with_capacity(n);
            for _ in 0..n {
                ls.push(read_local(r)?);
            }
            Rvalue::Phi(ls)
        }
        RV_LENGTH => Rvalue::Length(read_value(r)?),
        tag => return Err(malformed(format!("unknown rvalue tag {tag}"))),
    })
}

const ID_THIS: u8 = 0;
const ID_PARAM: u8 = 1;
const ID_CAUGHT: u8 = 2;

fn write_identity(w: &mut WireWriter, k: &IdentityKind) {
    match k {
        IdentityKind::This(c) => {
            w.put_u8(ID_THIS);
            write_class_name(w, c);
        }
        IdentityKind::Param(i, t) => {
            w.put_u8(ID_PARAM);
            w.put_len(*i);
            write_type(w, t);
        }
        IdentityKind::CaughtException => w.put_u8(ID_CAUGHT),
    }
}

fn read_identity(r: &mut WireReader<'_>) -> Result<IdentityKind, WireError> {
    Ok(match r.get_u8()? {
        ID_THIS => IdentityKind::This(read_class_name(r)?),
        ID_PARAM => {
            let i = r.get_uvarint()?;
            let i = usize::try_from(i).map_err(|_| malformed("param index exceeds usize"))?;
            IdentityKind::Param(i, read_type(r)?)
        }
        ID_CAUGHT => IdentityKind::CaughtException,
        tag => return Err(malformed(format!("unknown identity tag {tag}"))),
    })
}

const ST_IDENTITY: u8 = 0;
const ST_ASSIGN: u8 = 1;
const ST_INVOKE: u8 = 2;
const ST_RETURN: u8 = 3;
const ST_IF: u8 = 4;
const ST_GOTO: u8 = 5;
const ST_THROW: u8 = 6;
const ST_NOP: u8 = 7;

fn write_stmt(w: &mut WireWriter, s: &Stmt) {
    match s {
        Stmt::Identity { local, kind } => {
            w.put_u8(ST_IDENTITY);
            write_local(w, *local);
            write_identity(w, kind);
        }
        Stmt::Assign { place, rvalue } => {
            w.put_u8(ST_ASSIGN);
            write_place(w, place);
            write_rvalue(w, rvalue);
        }
        Stmt::Invoke(ie) => {
            w.put_u8(ST_INVOKE);
            write_invoke(w, ie);
        }
        Stmt::Return(v) => {
            w.put_u8(ST_RETURN);
            match v {
                Some(v) => {
                    w.put_bool(true);
                    write_value(w, v);
                }
                None => w.put_bool(false),
            }
        }
        Stmt::If { op, a, b, target } => {
            w.put_u8(ST_IF);
            w.put_u8(condop_tag(*op));
            write_value(w, a);
            write_value(w, b);
            w.put_len(*target);
        }
        Stmt::Goto(t) => {
            w.put_u8(ST_GOTO);
            w.put_len(*t);
        }
        Stmt::Throw(v) => {
            w.put_u8(ST_THROW);
            write_value(w, v);
        }
        Stmt::Nop => w.put_u8(ST_NOP),
    }
}

fn read_target(r: &mut WireReader<'_>) -> Result<usize, WireError> {
    let t = r.get_uvarint()?;
    usize::try_from(t).map_err(|_| malformed("branch target exceeds usize"))
}

fn read_stmt(r: &mut WireReader<'_>) -> Result<Stmt, WireError> {
    Ok(match r.get_u8()? {
        ST_IDENTITY => Stmt::Identity {
            local: read_local(r)?,
            kind: read_identity(r)?,
        },
        ST_ASSIGN => Stmt::Assign {
            place: read_place(r)?,
            rvalue: read_rvalue(r)?,
        },
        ST_INVOKE => Stmt::Invoke(read_invoke(r)?),
        ST_RETURN => {
            if r.get_bool()? {
                Stmt::Return(Some(read_value(r)?))
            } else {
                Stmt::Return(None)
            }
        }
        ST_IF => {
            let op = condop_from(r.get_u8()?)?;
            let a = read_value(r)?;
            let b = read_value(r)?;
            let target = read_target(r)?;
            Stmt::If { op, a, b, target }
        }
        ST_GOTO => Stmt::Goto(read_target(r)?),
        ST_THROW => Stmt::Throw(read_value(r)?),
        ST_NOP => Stmt::Nop,
        tag => return Err(malformed(format!("unknown stmt tag {tag}"))),
    })
}

// ---------------------------------------------------------------------
// Bodies, methods, classes, programs
// ---------------------------------------------------------------------

fn write_body(w: &mut WireWriter, b: &MethodBody) {
    let locals: Vec<_> = b.locals().collect();
    w.put_len(locals.len());
    for l in &locals {
        write_local(w, l.id);
        write_type(w, &l.ty);
    }
    w.put_len(b.len());
    for s in b.stmts() {
        write_stmt(w, s);
    }
}

fn read_body(r: &mut WireReader<'_>) -> Result<MethodBody, WireError> {
    let mut body = MethodBody::new();
    let locals = r.get_len(2)?;
    for _ in 0..locals {
        let id = read_local(r)?;
        let ty = read_type(r)?;
        body.declare_local(id, ty);
    }
    let stmts = r.get_len(1)?;
    for _ in 0..stmts {
        body.push(read_stmt(r)?);
    }
    // Branch targets must stay inside the body so CFG construction cannot
    // index out of bounds on a decoded program.
    for s in body.stmts() {
        for t in s.branch_targets() {
            if t >= body.len() {
                return Err(malformed(format!(
                    "branch target {t} outside body of {} statements",
                    body.len()
                )));
            }
        }
    }
    Ok(body)
}

fn write_method(w: &mut WireWriter, m: &Method) {
    write_method_sig(w, m.sig());
    write_modifiers(w, m.modifiers());
    match m.body() {
        Some(b) => {
            w.put_bool(true);
            write_body(w, b);
        }
        None => w.put_bool(false),
    }
}

fn read_method(r: &mut WireReader<'_>) -> Result<Method, WireError> {
    let sig = read_method_sig(r)?;
    let modifiers = read_modifiers(r)?;
    let body = if r.get_bool()? {
        Some(read_body(r)?)
    } else {
        None
    };
    Ok(Method::from_parts(sig, modifiers, body))
}

/// Encodes one class definition — the unit of the content-addressed
/// chunk store: a class's chunk key is a checksum over exactly these
/// bytes, so equal classes chunk identically across program versions.
pub fn write_class(w: &mut WireWriter, c: &Class) {
    write_class_name(w, c.name());
    match c.superclass() {
        Some(s) => {
            w.put_bool(true);
            write_class_name(w, s);
        }
        None => w.put_bool(false),
    }
    w.put_len(c.interfaces().len());
    for i in c.interfaces() {
        write_class_name(w, i);
    }
    write_modifiers(w, c.modifiers());
    w.put_len(c.fields().len());
    for f in c.fields() {
        write_field_sig(w, f.sig());
        write_modifiers(w, f.modifiers());
    }
    w.put_len(c.methods().len());
    for m in c.methods() {
        write_method(w, m);
    }
}

/// Decodes one class definition written by [`write_class`], validating
/// the same invariants the program decoder enforces (methods declared on
/// this class, no duplicate signatures).
pub fn read_class(r: &mut WireReader<'_>) -> Result<Class, WireError> {
    let name = read_class_name(r)?;
    let superclass = if r.get_bool()? {
        Some(read_class_name(r)?)
    } else {
        None
    };
    let n_ifaces = r.get_len(1)?;
    let mut interfaces = Vec::with_capacity(n_ifaces);
    for _ in 0..n_ifaces {
        interfaces.push(read_class_name(r)?);
    }
    let modifiers = read_modifiers(r)?;
    let n_fields = r.get_len(1)?;
    let mut fields = Vec::with_capacity(n_fields);
    for _ in 0..n_fields {
        let sig = read_field_sig(r)?;
        let m = read_modifiers(r)?;
        fields.push(FieldDef::new(sig, m));
    }
    let n_methods = r.get_len(1)?;
    let mut methods = Vec::with_capacity(n_methods);
    let mut seen = BTreeSet::new();
    for _ in 0..n_methods {
        let m = read_method(r)?;
        if m.sig().class() != &name {
            return Err(malformed(format!(
                "method {} declared inside class {}",
                m.sig(),
                name
            )));
        }
        if !seen.insert(m.sig().clone()) {
            return Err(malformed(format!("duplicate method {}", m.sig())));
        }
        methods.push(m);
    }
    Ok(Class::from_parts(
        name, superclass, interfaces, modifiers, fields, methods,
    ))
}

/// Encodes a whole program (classes in their deterministic name order).
pub fn write_program(w: &mut WireWriter, p: &Program) {
    w.put_len(p.class_count());
    for c in p.classes() {
        write_class(w, c);
    }
}

/// Decodes a program, rejecting duplicate class definitions (which the
/// in-memory builder would panic on).
pub fn read_program(r: &mut WireReader<'_>) -> Result<Program, WireError> {
    let n = r.get_len(1)?;
    let mut p = Program::new();
    for _ in 0..n {
        let c = read_class(r)?;
        if p.defines(c.name()) {
            return Err(malformed(format!("duplicate class {}", c.name())));
        }
        p.add_class(c);
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClassBuilder, MethodBuilder};

    fn sample_program() -> Program {
        let cls = ClassName::new("com.w.Main");
        let mut m = MethodBuilder::public(&cls, "go", vec![Type::Int, Type::string()], Type::Int);
        let arg = m.param(0);
        m.invoke(InvokeExpr::call_static(
            MethodSig::new("com.w.Util", "log", vec![Type::string()], Type::Void),
            vec![Value::str("hello \"wire\"")],
        ));
        m.ret(Value::Local(arg));
        let mut p = Program::new();
        p.add_class(
            ClassBuilder::new("com.w.Main")
                .extends("android.app.Activity")
                .implements("java.lang.Runnable")
                .field("state", Type::array(Type::Byte), Modifiers::private())
                .method(m.build())
                .build(),
        );
        p
    }

    #[test]
    fn varints_round_trip_and_reject_overflow() {
        let mut w = WireWriter::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            w.put_uvarint(v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            w.put_ivarint(v);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            assert_eq!(r.get_uvarint().unwrap(), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            assert_eq!(r.get_ivarint().unwrap(), v);
        }
        assert!(r.is_empty());
        // An 11-byte continuation run must not loop forever or panic.
        let bad = [0x80u8; 11];
        assert!(matches!(
            WireReader::new(&bad).get_uvarint(),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn hostile_lengths_fail_before_allocating() {
        // A length prefix of u64::MAX with no payload behind it.
        let mut w = WireWriter::new();
        w.put_uvarint(u64::MAX);
        let bytes = w.into_bytes();
        assert_eq!(
            WireReader::new(&bytes).get_len(1),
            Err(WireError::Truncated)
        );
        assert!(WireReader::new(&bytes).get_bytes().is_err());
    }

    #[test]
    fn f64_round_trips_bit_exactly() {
        let mut w = WireWriter::new();
        let weird_nan = f64::from_bits(0x7ff8_dead_beef_0001);
        for v in [0.0, -0.0, 1.5, f64::INFINITY, weird_nan] {
            w.put_f64(v);
        }
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        for v in [0.0f64, -0.0, 1.5, f64::INFINITY, weird_nan] {
            assert_eq!(r.get_f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn program_round_trips_and_is_deterministic() {
        let p = sample_program();
        let mut w = WireWriter::new();
        write_program(&mut w, &p);
        let bytes = w.into_bytes();
        let q = read_program(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(p.class_count(), q.class_count());
        for (a, b) in p.classes().zip(q.classes()) {
            assert_eq!(a, b);
        }
        let mut w2 = WireWriter::new();
        write_program(&mut w2, &q);
        assert_eq!(bytes, w2.into_bytes(), "re-encoding is byte-identical");
    }

    #[test]
    fn every_truncation_of_a_program_fails_cleanly() {
        let mut w = WireWriter::new();
        write_program(&mut w, &sample_program());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let r = read_program(&mut WireReader::new(&bytes[..cut]));
            assert!(r.is_err(), "prefix of {cut} bytes decoded to a program");
        }
    }

    #[test]
    fn corrupt_tags_are_malformed_not_panics() {
        let mut w = WireWriter::new();
        write_program(&mut w, &sample_program());
        let bytes = w.into_bytes();
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0xff;
            // Any outcome but a panic is acceptable; most positions error.
            let _ = read_program(&mut WireReader::new(&mutated));
        }
    }

    #[test]
    fn decoded_branch_targets_stay_in_bounds() {
        let mut w = WireWriter::new();
        // One-statement body whose goto points past the end.
        w.put_len(0); // locals
        w.put_len(1); // stmts
        w.put_u8(ST_GOTO);
        w.put_len(7);
        let err = read_body(&mut WireReader::new(w.bytes())).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
    }

    #[test]
    fn duplicate_classes_and_methods_are_rejected() {
        let p = sample_program();
        let mut w = WireWriter::new();
        w.put_len(2);
        let c = p.classes().next().unwrap();
        write_class(&mut w, c);
        write_class(&mut w, c);
        let err = read_program(&mut WireReader::new(w.bytes())).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a64(b"snapshot"), fnv1a64(b"snapsho t"));
    }

    #[test]
    fn fnv1a64_wide_detects_flips_and_length_changes() {
        // Deterministic, and a function of content at every position —
        // including the zero-padded tail, which the folded-in length
        // disambiguates from genuine trailing zero bytes.
        let data: Vec<u8> = (0u32..1000).map(|i| (i % 251) as u8).collect();
        assert_eq!(fnv1a64_wide(&data), fnv1a64_wide(&data.clone()));
        for i in [0usize, 7, 8, 500, 993, 999] {
            let mut bad = data.clone();
            bad[i] ^= 0x40;
            assert_ne!(fnv1a64_wide(&bad), fnv1a64_wide(&data), "flip at {i}");
        }
        let mut extended = data.clone();
        extended.push(0);
        assert_ne!(fnv1a64_wide(&extended), fnv1a64_wide(&data));
        assert_ne!(fnv1a64_wide(b"ab"), fnv1a64_wide(b"ab\0"));
        assert_ne!(fnv1a64_wide(b"snapshot"), fnv1a64(b"snapshot"));
    }
}
