//! # backdroid-ir
//!
//! A typed, Jimple/Shimple-style intermediate representation for Android
//! application code, serving as the *program analysis space* of the
//! BackDroid reproduction (paper §III, Fig 2).
//!
//! The IR deliberately mirrors the Soot vocabulary the paper relies on:
//! `DefinitionStmt`/`AssignStmt`, `InvokeStmt`, `ReturnStmt`, and the six
//! expression kinds modeled by the forward analysis (`BinopExpr`,
//! `CastExpr`, `InvokeExpr`, `NewExpr`, `NewArrayExpr`, `PhiExpr`).
//!
//! ## Quick example
//!
//! ```
//! use backdroid_ir::{ClassBuilder, ClassName, MethodBuilder, Program, Type, Value};
//!
//! let server = ClassName::new("com.example.Server");
//! let mut ctor = MethodBuilder::constructor(&server, vec![Type::Int]);
//! ctor.ret_void();
//! let mut start = MethodBuilder::public(&server, "start", vec![], Type::Void);
//! start.ret_void();
//!
//! let mut program = Program::new();
//! program.add_class(
//!     ClassBuilder::new("com.example.Server")
//!         .method(ctor.build())
//!         .method(start.build())
//!         .build(),
//! );
//! assert_eq!(program.class_count(), 1);
//! assert!(program.method(
//!     &backdroid_ir::MethodSig::new("com.example.Server", "start", vec![], Type::Void)
//! ).is_some());
//! # let _ = Value::int(0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod body;
mod builder;
mod cfg;
mod program;
mod stmt;
mod types;
pub mod wire;

pub use body::{Class, FieldDef, Local, Method, MethodBody};
pub use builder::{ClassBuilder, Label, MethodBuilder};
pub use cfg::Cfg;
pub use program::Program;
pub use stmt::{
    BinOp, CondOp, Const, IdentityKind, InvokeExpr, InvokeKind, LocalId, Place, Rvalue, Stmt, Value,
};
pub use types::{ClassName, FieldSig, MethodSig, Modifiers, Type};
